// Tests for the CXL fabric: devices, switch, accessor cost charging,
// crash-survivability, and the multi-tenant memory manager.
#include <gtest/gtest.h>

#include <cstring>

#include "cxl/cxl_fabric.h"
#include "cxl/cxl_memory_manager.h"
#include "sim/cpu_cache.h"

namespace polarcxl::cxl {
namespace {

using sim::CpuCacheSim;
using sim::ExecContext;

class CxlFabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fabric_.AddDevice(4 << 20).ok());
    ASSERT_TRUE(fabric_.AddDevice(4 << 20).ok());
    auto host = fabric_.AttachHost(/*node=*/0);
    ASSERT_TRUE(host.ok());
    acc_ = *host;
  }

  CxlFabric fabric_;
  CxlAccessor* acc_ = nullptr;
};

TEST_F(CxlFabricTest, CapacityAggregatesDevices) {
  EXPECT_EQ(fabric_.capacity(), 8u << 20);
  EXPECT_EQ(fabric_.num_devices(), 2u);
}

TEST_F(CxlFabricTest, LoadStoreRoundTrip) {
  ExecContext ctx;
  const char msg[] = "polarcxlmem";
  acc_->Store(ctx, 1000, msg, sizeof(msg));
  char out[sizeof(msg)] = {};
  acc_->Load(ctx, 1000, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

TEST_F(CxlFabricTest, UncachedLoadPaysSwitchLatency) {
  ExecContext ctx;  // no CPU cache: always misses
  uint64_t v = 0;
  acc_->Load(ctx, 64, &v, sizeof(v));
  EXPECT_NEAR(static_cast<double>(ctx.now),
              static_cast<double>(fabric_.latency().line.cxl_switch_local), 5);
}

TEST_F(CxlFabricTest, RemoteNumaHostPaysMore) {
  auto remote = fabric_.AttachHost(/*node=*/1, /*remote_numa=*/true);
  ASSERT_TRUE(remote.ok());
  ExecContext ctx;
  uint64_t v = 0;
  (*remote)->Load(ctx, 64, &v, sizeof(v));
  EXPECT_NEAR(static_cast<double>(ctx.now),
              static_cast<double>(fabric_.latency().line.cxl_switch_remote), 5);
}

TEST_F(CxlFabricTest, CachedLoadIsCheap) {
  CpuCacheSim cache(1 << 20);
  ExecContext ctx;
  ctx.cache = &cache;
  uint64_t v = 0;
  acc_->Load(ctx, 64, &v, sizeof(v));
  const Nanos first = ctx.now;
  acc_->Load(ctx, 64, &v, sizeof(v));
  EXPECT_LT(ctx.now - first, 10);
}

TEST_F(CxlFabricTest, CrossDeviceCopyIsSafe) {
  ExecContext ctx;
  // Write a run straddling the 4 MiB device boundary.
  std::vector<uint8_t> in(8192);
  for (size_t i = 0; i < in.size(); i++) in[i] = static_cast<uint8_t>(i);
  const MemOffset off = (4 << 20) - 4096;
  acc_->Store(ctx, off, in.data(), static_cast<uint32_t>(in.size()));
  std::vector<uint8_t> out(in.size());
  acc_->Load(ctx, off, out.data(), static_cast<uint32_t>(out.size()));
  EXPECT_EQ(in, out);
}

TEST_F(CxlFabricTest, ContentsSurviveHostSideReset) {
  ExecContext ctx;
  const uint32_t sentinel = 0xDEADBEEF;
  acc_->StorePod(ctx, 128, sentinel);
  // "Crash": the host's cache and all DRAM state go away; the fabric stays.
  CpuCacheSim cache(1 << 20);
  cache.InvalidateAll();
  auto host2 = fabric_.AttachHost(/*node=*/7);
  ASSERT_TRUE(host2.ok());
  ExecContext ctx2;
  EXPECT_EQ((*host2)->LoadPod<uint32_t>(ctx2, 128), sentinel);
}

TEST_F(CxlFabricTest, FlushWritesDirtyLinesOnly) {
  CpuCacheSim cache(1 << 20);
  ExecContext ctx;
  ctx.cache = &cache;
  uint64_t v = 42;
  acc_->Store(ctx, 0, &v, sizeof(v));        // 1 dirty line
  acc_->Load(ctx, 4096, &v, sizeof(v));      // 1 clean line
  EXPECT_EQ(acc_->Flush(ctx, 0, kPageSize), 1u);
}

TEST_F(CxlFabricTest, InvalidateForcesRefetchOfRemoteUpdate) {
  CpuCacheSim cache(1 << 20);
  ExecContext ctx;
  ctx.cache = &cache;
  uint32_t v = 1;
  acc_->Store(ctx, 256, &v, sizeof(v));
  acc_->Flush(ctx, 256, 64);
  acc_->Load(ctx, 256, &v, sizeof(v));  // now cached clean

  // Another host updates the line in device memory.
  auto other = fabric_.AttachHost(8);
  ExecContext octx;
  uint32_t nv = 2;
  (*other)->Store(octx, 256, &nv, sizeof(nv));
  (*other)->Flush(octx, 256, 64);

  // Without invalidation this host's *simulated* cache would be stale; the
  // protocol invalidates and the next load fetches the new value.
  acc_->InvalidateCache(ctx, 256, 64);
  const Nanos before = ctx.now;
  acc_->Load(ctx, 256, &v, sizeof(v));
  EXPECT_EQ(v, 2u);
  EXPECT_GE(ctx.now - before, fabric_.latency().line.cxl_switch_local);
}

TEST_F(CxlFabricTest, SwitchPortExhaustion) {
  CxlSwitch::Options so;
  so.total_lanes = 32;  // two x16 ports only
  CxlFabric::Options fo;
  fo.switch_options = so;
  CxlFabric small(fo);
  ASSERT_TRUE(small.AddDevice(1 << 20).ok());
  ASSERT_TRUE(small.AttachHost(0).ok());
  EXPECT_FALSE(small.AttachHost(1).ok());
}

TEST(CxlSwitchTest, PortChannelsAreIndependent) {
  CxlSwitch sw("sw");
  auto p0 = sw.BindPort(CxlSwitch::PortKind::kHost);
  auto p1 = sw.BindPort(CxlSwitch::PortKind::kHost);
  ASSERT_TRUE(p0.ok() && p1.ok());
  sw.port_channel(*p0)->Transfer(0, 1 << 20);
  EXPECT_EQ(sw.port_channel(*p1)->total_bytes(), 0u);
}

// ---------- CxlMemoryManager ----------

TEST(CxlMemoryManagerTest, AllocateChargesRpcAndAligns) {
  CxlMemoryManager mgr(1 << 24, /*rpc_round_trip=*/2600);
  ExecContext ctx;
  auto r = mgr.Allocate(ctx, 1, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx.now, 2600);
  EXPECT_EQ(mgr.allocated(), kPageSize);  // rounded up
}

TEST(CxlMemoryManagerTest, RegionsNeverOverlap) {
  CxlMemoryManager mgr(1 << 24);
  ExecContext ctx;
  auto a = mgr.Allocate(ctx, 1, 3 * kPageSize);
  auto b = mgr.Allocate(ctx, 2, 5 * kPageSize);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a + 3 * kPageSize <= *b || *b + 5 * kPageSize <= *a);
  EXPECT_TRUE(mgr.Owns(1, *a, 3 * kPageSize));
  EXPECT_TRUE(mgr.Owns(2, *b, 5 * kPageSize));
  EXPECT_FALSE(mgr.Owns(1, *b, kPageSize));
  EXPECT_FALSE(mgr.Owns(2, *a, kPageSize));
}

TEST(CxlMemoryManagerTest, FirstFitReusesReleasedGap) {
  CxlMemoryManager mgr(16 * kPageSize);
  ExecContext ctx;
  auto a = mgr.Allocate(ctx, 1, 4 * kPageSize);
  auto b = mgr.Allocate(ctx, 2, 4 * kPageSize);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(mgr.Release(ctx, 1, *a).ok());
  auto c = mgr.Allocate(ctx, 3, 2 * kPageSize);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // fills the gap
}

TEST(CxlMemoryManagerTest, ExhaustionReturnsOutOfMemory) {
  CxlMemoryManager mgr(4 * kPageSize);
  ExecContext ctx;
  ASSERT_TRUE(mgr.Allocate(ctx, 1, 4 * kPageSize).ok());
  auto r = mgr.Allocate(ctx, 2, kPageSize);
  EXPECT_TRUE(r.status().IsOutOfMemory());
}

TEST(CxlMemoryManagerTest, TenantCannotReleaseForeignRegion) {
  CxlMemoryManager mgr(1 << 24);
  ExecContext ctx;
  auto a = mgr.Allocate(ctx, 1, kPageSize);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(mgr.Release(ctx, 2, *a).IsInvalidArgument());
  EXPECT_TRUE(mgr.Release(ctx, 1, *a).ok());
}

TEST(CxlMemoryManagerTest, ReleaseAllFreesEverything) {
  CxlMemoryManager mgr(1 << 24);
  ExecContext ctx;
  mgr.Allocate(ctx, 1, kPageSize);
  mgr.Allocate(ctx, 1, kPageSize);
  mgr.Allocate(ctx, 2, kPageSize);
  mgr.ReleaseAll(ctx, 1);
  EXPECT_EQ(mgr.allocated(), kPageSize);
  EXPECT_EQ(mgr.RegionsOf(1).size(), 0u);
  EXPECT_EQ(mgr.RegionsOf(2).size(), 1u);
}

TEST(CxlMemoryManagerTest, ZeroSizeRejected) {
  CxlMemoryManager mgr(1 << 24);
  ExecContext ctx;
  EXPECT_TRUE(mgr.Allocate(ctx, 1, 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace polarcxl::cxl
