// Open-loop traffic layer tests: counter-mode arrival determinism (schedules
// bit-identical across sweep/world thread counts), admission queue caps and
// QoS weighting, TimeSeries bucket-edge accounting, the chaos driver's
// error_backoff path, the tiered pool's verbs retry budget, and the traffic
// driver's determinism + overload-protection contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/histogram.h"
#include "harness/chaos_driver.h"
#include "harness/open_loop.h"
#include "harness/sweep_runner.h"
#include "harness/traffic_driver.h"

namespace polarcxl::harness {
namespace {

// ---------- arrival processes ----------

TEST(ArrivalTest, SchedulesAreCounterModeDeterministic) {
  ArrivalSpec spec;
  spec.rate_per_sec = 200'000.0;
  const auto a = GenerateArrivals(spec, 42, 3, Millis(50));
  const auto b = GenerateArrivals(spec, 42, 3, Millis(50));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  ASSERT_FALSE(a.empty());
  EXPECT_GE(a.front(), 0);
  EXPECT_LT(a.back(), Millis(50));

  // Different tenant or seed: a different (but equally deterministic)
  // schedule.
  EXPECT_NE(a, GenerateArrivals(spec, 42, 4, Millis(50)));
  EXPECT_NE(a, GenerateArrivals(spec, 43, 3, Millis(50)));
}

TEST(ArrivalTest, PoissonHonorsConfiguredRate) {
  ArrivalSpec spec;
  spec.rate_per_sec = 400'000.0;
  const auto a = GenerateArrivals(spec, 7, 0, Millis(100));
  // E[count] = 40000; a Poisson count is within 5% with overwhelming
  // probability at this mass.
  EXPECT_NEAR(static_cast<double>(a.size()), 40'000.0, 2'000.0);
}

TEST(ArrivalTest, BurstyOffWindowsAreQuieter) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBurstyOnOff;
  spec.rate_per_sec = 400'000.0;
  spec.on_period = Millis(10);
  spec.off_period = Millis(10);
  spec.off_factor = 0.1;
  const auto a = GenerateArrivals(spec, 7, 0, Millis(100));
  uint64_t on = 0;
  uint64_t off = 0;
  for (Nanos t : a) {
    (t % Millis(20) < Millis(10) ? on : off)++;
  }
  // 10:1 configured ratio; allow generous sampling noise.
  EXPECT_GT(on, off * 5);
  EXPECT_GT(off, 0u);
}

TEST(ArrivalTest, DiurnalRampPeaksMidPeriod) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnalRamp;
  spec.rate_per_sec = 400'000.0;
  spec.diurnal_period = Millis(100);
  spec.amplitude = 0.8;
  EXPECT_NEAR(ArrivalRateAt(spec, 0), 80'000.0, 1.0);           // trough
  EXPECT_NEAR(ArrivalRateAt(spec, Millis(50)), 720'000.0, 1.0);  // peak
  EXPECT_DOUBLE_EQ(ArrivalPeakRate(spec), 720'000.0);
  const auto a = GenerateArrivals(spec, 7, 0, Millis(100));
  uint64_t first_quarter = 0;
  uint64_t mid_quarter = 0;
  for (Nanos t : a) {
    if (t < Millis(25)) first_quarter++;
    if (t >= Millis(38) && t < Millis(63)) mid_quarter++;
  }
  EXPECT_GT(mid_quarter, first_quarter * 2);
}

// ---------- admission queue ----------

TEST(AdmissionQueueTest, CapsShedAtAdmissionAndFifoWithinClass) {
  AdmissionQueue::Options opt;
  opt.gold_cap = 2;
  opt.best_effort_cap = 1;
  AdmissionQueue q(opt);
  EXPECT_TRUE(q.Offer(QosClass::kGold, {10, 0}));
  EXPECT_TRUE(q.Offer(QosClass::kGold, {20, 0}));
  EXPECT_FALSE(q.Offer(QosClass::kGold, {30, 0}));  // gold full
  EXPECT_TRUE(q.Offer(QosClass::kBestEffort, {15, 1}));
  EXPECT_FALSE(q.Offer(QosClass::kBestEffort, {25, 1}));
  EXPECT_EQ(q.size(QosClass::kGold), 2u);
  EXPECT_EQ(q.size(QosClass::kBestEffort), 1u);

  AdmittedOp op;
  ASSERT_TRUE(q.Pop(&op));
  EXPECT_EQ(op.arrival, 10);  // FIFO within gold
  ASSERT_TRUE(q.Pop(&op));
  EXPECT_EQ(op.arrival, 20);
  ASSERT_TRUE(q.Pop(&op));
  EXPECT_EQ(op.arrival, 15);  // best-effort drains once gold is empty
  EXPECT_FALSE(q.Pop(&op));
}

TEST(AdmissionQueueTest, WeightedRoundRobinInterleavesClasses) {
  AdmissionQueue::Options opt;
  opt.gold_weight = 4;
  opt.best_effort_weight = 1;
  AdmissionQueue q(opt);
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(q.Offer(QosClass::kGold, {i, 0}));
    ASSERT_TRUE(q.Offer(QosClass::kBestEffort, {i, 1}));
  }
  // With both classes backlogged: 4 gold pops per best-effort pop.
  std::vector<uint32_t> order;
  AdmittedOp op;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(q.Pop(&op));
    order.push_back(op.tenant);
  }
  const std::vector<uint32_t> expect = {0, 0, 0, 0, 1, 0, 0, 0, 0, 1};
  EXPECT_EQ(order, expect);
}

// ---------- TimeSeries bucket edges (satellite) ----------

TEST(TimeSeriesTest, BucketBoundaryLandsInUpperBucket) {
  TimeSeries ts(10);
  ts.Add(0);    // bucket 0
  ts.Add(9);    // bucket 0
  ts.Add(10);   // exactly on the boundary -> bucket 1, not 0
  ts.Add(19);   // bucket 1
  ts.Add(20);   // bucket 2
  EXPECT_EQ(ts.bucket(0), 2u);
  EXPECT_EQ(ts.bucket(1), 2u);
  EXPECT_EQ(ts.bucket(2), 1u);
  // Negative clamps to bucket 0; the far edge saturates, never resizes
  // past the cap.
  ts.Add(-5);
  EXPECT_EQ(ts.bucket(0), 3u);
  ts.Add(std::numeric_limits<Nanos>::max());
  EXPECT_LE(ts.num_buckets(), TimeSeries::kMaxBuckets);
}

// ---------- chaos driver error_backoff (satellite) ----------

ChaosConfig OutageChaos(Nanos error_backoff) {
  ChaosConfig c;
  c.kind = engine::BufferPoolKind::kCxl;
  c.lanes = 4;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(20);
  c.measure = Millis(100);
  c.bucket = Millis(10);
  c.error_backoff = error_backoff;
  // All-write mix: during a CXL outage reads fall through to degraded
  // storage serves, but writes fail fast (the durable frame is
  // unreachable), so every op exercises the backoff path.
  c.write_fraction = 1.0;
  c.plan.Add({faults::FaultKind::kCxlDown, Millis(20), Millis(80)});
  return c;
}

TEST(ChaosDriverTest, ErrorBackoffThrottlesFailingLanes) {
  const ChaosResult fast = RunChaos(OutageChaos(Micros(10)));
  const ChaosResult slow = RunChaos(OutageChaos(Millis(2)));
  ASSERT_GT(fast.failed_ops, 0u);
  ASSERT_GT(slow.failed_ops, 0u);
  // A much longer backoff burns the outage window waiting instead of
  // hammering the dead device: far fewer failed attempts, fewer steps.
  // (Each failed write still pays the degraded B-tree descent, so the
  // ratio tracks (descent + backoff) rather than backoff alone.)
  EXPECT_GT(fast.failed_ops, slow.failed_ops * 4);
  EXPECT_GT(fast.lane_steps, slow.lane_steps);
  // And the backoff value is part of the determinism contract.
  const ChaosResult again = RunChaos(OutageChaos(Millis(2)));
  EXPECT_EQ(slow.lane_steps, again.lane_steps);
  EXPECT_EQ(slow.failed_ops, again.failed_ops);
}

// ---------- traffic driver ----------

/// Small-but-real open-loop config: one gold + one best-effort tenant on a
/// single instance.
OpenLoopConfig QuickOpenLoop(engine::BufferPoolKind kind, double rate) {
  OpenLoopConfig c;
  c.kind = kind;
  c.instances = 1;
  c.lanes_per_instance = 4;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(20);
  c.measure = Millis(50);
  c.bucket = Millis(10);
  c.world_threads = 0;  // explicit serial; tests override
  TenantSpec gold;
  gold.name = "gold";
  gold.qos = QosClass::kGold;
  gold.arrivals.rate_per_sec = rate;
  TenantSpec be;
  be.name = "be";
  be.qos = QosClass::kBestEffort;
  be.arrivals.kind = ArrivalKind::kBurstyOnOff;
  be.arrivals.rate_per_sec = rate;
  be.arrivals.on_period = Millis(10);
  be.arrivals.off_period = Millis(10);
  be.arrivals.off_factor = 0.2;
  c.tenants = {gold, be};
  return c;
}

void ExpectIdentical(const OpenLoopResult& x, const OpenLoopResult& y) {
  EXPECT_EQ(x.lane_steps, y.lane_steps);
  EXPECT_EQ(x.offered, y.offered);
  EXPECT_EQ(x.admitted, y.admitted);
  EXPECT_EQ(x.shed_queue, y.shed_queue);
  EXPECT_EQ(x.shed_deadline, y.shed_deadline);
  EXPECT_EQ(x.ok_ops, y.ok_ops);
  EXPECT_EQ(x.ok_in_slo, y.ok_in_slo);
  EXPECT_EQ(x.failed_ops, y.failed_ops);
  EXPECT_EQ(x.retried_ops, y.retried_ops);
  EXPECT_EQ(x.p99, y.p99);
  EXPECT_EQ(x.virtual_end, y.virtual_end);
  ASSERT_EQ(x.tenants.size(), y.tenants.size());
  for (size_t t = 0; t < x.tenants.size(); t++) {
    EXPECT_EQ(x.tenants[t].offered, y.tenants[t].offered) << t;
    EXPECT_EQ(x.tenants[t].ok_ops, y.tenants[t].ok_ops) << t;
    EXPECT_EQ(x.tenants[t].latency.count(), y.tenants[t].latency.count())
        << t;
    EXPECT_EQ(x.tenants[t].queue_wait.max(), y.tenants[t].queue_wait.max())
        << t;
  }
  ASSERT_EQ(x.ok.num_buckets(), y.ok.num_buckets());
  for (size_t b = 0; b < x.ok.num_buckets(); b++) {
    EXPECT_EQ(x.ok.bucket(b), y.ok.bucket(b)) << "ok bucket " << b;
  }
}

TEST(TrafficDriverTest, RepeatRunsAreBitIdentical) {
  const OpenLoopConfig c = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                         100'000.0);
  ExpectIdentical(RunOpenLoop(c), RunOpenLoop(c));
}

TEST(TrafficDriverTest, HealthyLoadMeetsSlo) {
  const OpenLoopConfig c = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                         100'000.0);
  const OpenLoopResult r = RunOpenLoop(c);
  ASSERT_GT(r.offered, 0u);
  EXPECT_EQ(r.offered, r.admitted);  // nothing shed at admission
  EXPECT_EQ(r.shed_deadline, 0u);
  EXPECT_EQ(r.failed_ops, 0u);
  // Ops either completed in-window or were still in flight at the cut.
  EXPECT_GT(r.ok_ops, r.offered * 9 / 10);
  EXPECT_TRUE(r.slo_met) << "p99=" << r.p99 << " loss=" << r.loss_fraction;
  EXPECT_GT(r.goodput, 0.0);
}

TEST(TrafficDriverTest, OverloadShedsInsteadOfCollapsing) {
  OpenLoopConfig c = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                   2'000'000.0);
  c.admission.gold_cap = 256;
  c.admission.best_effort_cap = 256;
  const OpenLoopResult r = RunOpenLoop(c);
  ASSERT_GT(r.offered, 0u);
  // The queues are bounded: overload surfaces as admission sheds, not an
  // unbounded backlog.
  EXPECT_GT(r.shed_queue, 0u);
  EXPECT_EQ(r.offered, r.admitted + r.shed_queue);
  EXPECT_FALSE(r.slo_met);
  EXPECT_GT(r.loss_fraction, 0.05);
  // Served ops still complete (the engine is healthy, just saturated).
  EXPECT_GT(r.ok_ops, 0u);
  // Gold outruns best-effort under the 4:1 service weights.
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_GT(r.tenants[0].ok_ops, r.tenants[1].ok_ops);
}

TEST(TrafficDriverTest, DeadlineSheddingDropsAgedRequests) {
  OpenLoopConfig c = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                   2'000'000.0);
  c.admission.gold_cap = 4096;
  c.admission.best_effort_cap = 4096;
  c.gold_deadline = Micros(200);
  c.best_effort_deadline = Micros(200);
  const OpenLoopResult r = RunOpenLoop(c);
  EXPECT_GT(r.shed_deadline, 0u);
  // Deadline-shed ops cost shed_cost each, far less than serving: the ops
  // that ARE served waited at most ~deadline, keeping their latency far
  // below the unshed backlog's.
  EXPECT_GT(r.ok_ops, 0u);
}

TEST(TrafficDriverTest, SweepAndWorldThreadCountsAreInvariant) {
  OpenLoopConfig serial = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                        150'000.0);
  OpenLoopConfig epoch = serial;
  epoch.world_threads = 4;
  const OpenLoopResult base = RunOpenLoop(serial);
  const OpenLoopResult par = RunOpenLoop(epoch);
  ExpectIdentical(base, par);
  EXPECT_EQ(par.drain_divergence, 0u);
  EXPECT_GT(par.epochs, 0u);

  // POLAR_SWEEP_THREADS axis: RunSweep(1) vs RunSweep(4) over both pool
  // kinds and both world-thread modes.
  std::vector<OpenLoopConfig> configs = {
      serial, epoch, QuickOpenLoop(engine::BufferPoolKind::kTieredRdma,
                                   150'000.0)};
  const auto run = [](const OpenLoopConfig& c) { return RunOpenLoop(c); };
  const auto one =
      RunSweep<OpenLoopConfig, OpenLoopResult>(configs, run, 1);
  const auto four =
      RunSweep<OpenLoopConfig, OpenLoopResult>(configs, run, 4);
  ASSERT_EQ(one.size(), four.size());
  for (size_t i = 0; i < one.size(); i++) {
    SCOPED_TRACE(i);
    ExpectIdentical(one[i], four[i]);
  }
  ExpectIdentical(one[0], base);
}

TEST(TrafficDriverTest, CachedForkIsBitIdenticalToCold) {
  const OpenLoopConfig c = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                         150'000.0);
  const OpenLoopResult cold = RunOpenLoop(c);
  WorldCache cache;
  const OpenLoopResult first = RunOpenLoop(c, &cache);
  const OpenLoopResult forked = RunOpenLoop(c, &cache);
  EXPECT_FALSE(first.snapshot_hit);
  EXPECT_TRUE(forked.snapshot_hit);
  ExpectIdentical(cold, first);
  ExpectIdentical(cold, forked);

  // The world key excludes rates: a different rate forks the same world.
  const OpenLoopResult scaled =
      RunOpenLoop(ScaleArrivals(c, 0.5), &cache);
  EXPECT_TRUE(scaled.snapshot_hit);
  EXPECT_LT(scaled.offered, cold.offered);
}

TEST(TrafficDriverTest, ChaosUnderPeakComposesWithFaultPlan) {
  OpenLoopConfig c = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                   300'000.0);
  c.plan.Add({faults::FaultKind::kCxlDown, Millis(10), Millis(30)});
  const OpenLoopResult r = RunOpenLoop(c);
  // The outage turns peak-load service into failures/degraded fetches,
  // and the run keeps serving after the window ends.
  EXPECT_GT(r.failed_ops + r.degraded_fetches + r.fault_rejections, 0u);
  const OpenLoopResult again = RunOpenLoop(c);
  ExpectIdentical(r, again);
}

TEST(TrafficDriverTest, VerbsRetryBudgetSurfacesExhaustion) {
  OpenLoopConfig c = QuickOpenLoop(engine::BufferPoolKind::kTieredRdma,
                                   150'000.0);
  c.plan.Add({faults::FaultKind::kNicDown, Millis(5), Millis(45)});
  OpenLoopConfig budgeted = c;
  budgeted.verbs_retry_budget = Micros(20);
  const OpenLoopResult r = RunOpenLoop(budgeted);
  // The budget converts unbounded backoff into fail-fast Unavailable: the
  // counter moves and misses fall through to degraded storage reads.
  EXPECT_GT(r.retries_exhausted, 0u);
  EXPECT_GT(r.degraded_fetches, 0u);
  // Unlimited budget (legacy) never trips the counter.
  const OpenLoopResult legacy = RunOpenLoop(c);
  EXPECT_EQ(legacy.retries_exhausted, 0u);
  // Fail-fast spends the brownout serving from storage instead of
  // sleeping in verbs backoff.
  EXPECT_LT(r.fault_retries, legacy.fault_retries);
}

TEST(TrafficDriverTest, CapacitySearchBracketsTheKnee) {
  OpenLoopConfig base = QuickOpenLoop(engine::BufferPoolKind::kCxl,
                                      100'000.0);
  base.measure = Millis(30);
  WorldCache cache;
  CapacitySearch search;
  search.lo_scale = 0.5;
  search.hi_scale = 4.0;
  search.iters = 4;
  std::vector<CapacityPoint> trace;
  const CapacityPoint cap = FindSloCapacity(base, search, &cache, &trace);
  ASSERT_GE(trace.size(), 2u);
  // The bracket must actually straddle the knee for the bisection to mean
  // anything: the floor passes, the ceiling fails.
  EXPECT_TRUE(trace[0].result.slo_met);
  EXPECT_FALSE(trace[1].result.slo_met);
  EXPECT_TRUE(cap.result.slo_met);
  EXPECT_GT(cap.scale, search.lo_scale);
  EXPECT_LT(cap.scale, search.hi_scale);
  EXPECT_GT(cap.offered_rate, 0.0);
}



}  // namespace
}  // namespace polarcxl::harness
