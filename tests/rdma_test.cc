// Tests for the RDMA network model and the remote memory pool.
#include <gtest/gtest.h>

#include <array>

#include "rdma/rdma_network.h"
#include "rdma/remote_memory_pool.h"

namespace polarcxl::rdma {
namespace {

using sim::ExecContext;

class RdmaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_.RegisterHost(0);
    net_.RegisterHost(1);
  }
  RdmaNetwork net_;
};

TEST_F(RdmaTest, ReadLatencyMatchesTable2) {
  ExecContext ctx;
  net_.Read(ctx, 0, 1, 64);
  EXPECT_NEAR(static_cast<double>(ctx.now), 4550, 40);
  ExecContext ctx2;
  net_.Read(ctx2, 0, 1, 16384);
  EXPECT_NEAR(static_cast<double>(ctx2.now), 7130, 80);
}

TEST_F(RdmaTest, WriteLatencyMatchesTable2) {
  ExecContext ctx;
  net_.Write(ctx, 0, 1, 64);
  EXPECT_NEAR(static_cast<double>(ctx.now), 4480, 40);
  ExecContext ctx2;
  net_.Write(ctx2, 0, 1, 16384);
  EXPECT_NEAR(static_cast<double>(ctx2.now), 6120, 80);
}

TEST_F(RdmaTest, BandwidthSaturationQueues) {
  // Pump 10000 x 16 KB reads at t=0: 160 MB at 12 GB/s needs ~13 ms.
  ExecContext last;
  for (int i = 0; i < 10000; i++) {
    ExecContext ctx;
    net_.Read(ctx, 0, 1, 16384);
    last = ctx;
  }
  EXPECT_GT(last.now, Millis(12));
  EXPECT_LT(last.now, Millis(20));
}

TEST_F(RdmaTest, UnsaturatedOpsDoNotQueue) {
  ExecContext a;
  net_.Read(a, 0, 1, 64);
  ExecContext b;
  b.now = Millis(1);
  net_.Read(b, 0, 1, 64);
  EXPECT_NEAR(static_cast<double>(b.now - Millis(1)), 4550, 40);
}

TEST_F(RdmaTest, RpcRoundTrip) {
  ExecContext ctx;
  net_.Rpc(ctx, 0, 1);
  EXPECT_EQ(ctx.now, net_.latency().rdma_rpc_round_trip);
}

TEST_F(RdmaTest, StatsCount) {
  ExecContext ctx;
  net_.Read(ctx, 0, 1, 100);
  net_.Write(ctx, 0, 1, 200);
  EXPECT_EQ(net_.total_ops(), 2u);
  EXPECT_EQ(net_.total_bytes(), 300u);
  net_.ResetStats();
  EXPECT_EQ(net_.total_bytes(), 0u);
}

TEST_F(RdmaTest, DoorbellLimitsIops) {
  RdmaNic::Options slow;
  slow.iops = 1000;  // 1 K verbs ops/sec
  RdmaNetwork net;
  net.RegisterHost(0, slow);
  net.RegisterHost(1);
  ExecContext last;
  for (int i = 0; i < 100; i++) {
    ExecContext ctx;
    net.Read(ctx, 0, 1, 64);
    last = ctx;
  }
  // 100 ops at 1 K IOPS occupy ~100 ms of doorbell time.
  EXPECT_GT(last.now, Millis(20));
}

// ---------- RemoteMemoryPool ----------

class RemotePoolTest : public ::testing::Test {
 protected:
  RemotePoolTest() : pool_(&net_, /*server_node=*/99, /*capacity=*/8) {
    net_.RegisterHost(0);
  }
  RdmaNetwork net_;
  RemoteMemoryPool pool_;
};

TEST_F(RemotePoolTest, WriteThenReadRoundTrips) {
  std::array<uint8_t, kPageSize> in;
  in.fill(0xAB);
  ExecContext ctx;
  ASSERT_TRUE(pool_.WritePage(ctx, 0, 1, 42, in.data()).ok());
  std::array<uint8_t, kPageSize> out{};
  ASSERT_TRUE(pool_.ReadPage(ctx, 0, 1, 42, out.data()).ok());
  EXPECT_EQ(in, out);
  EXPECT_TRUE(pool_.Contains(1, 42));
}

TEST_F(RemotePoolTest, MissingPageIsNotFound) {
  std::array<uint8_t, kPageSize> out;
  ExecContext ctx;
  EXPECT_TRUE(pool_.ReadPage(ctx, 0, 1, 7, out.data()).IsNotFound());
}

TEST_F(RemotePoolTest, TenantsAreIsolated) {
  std::array<uint8_t, kPageSize> in;
  in.fill(1);
  ExecContext ctx;
  ASSERT_TRUE(pool_.WritePage(ctx, 0, /*tenant=*/1, 5, in.data()).ok());
  EXPECT_FALSE(pool_.Contains(2, 5));
  std::array<uint8_t, kPageSize> out;
  EXPECT_TRUE(
      pool_.ReadPage(ctx, 0, /*tenant=*/2, 5, out.data()).IsNotFound());
}

TEST_F(RemotePoolTest, CapacityEnforced) {
  std::array<uint8_t, kPageSize> page{};
  ExecContext ctx;
  for (PageId p = 0; p < 8; p++) {
    ASSERT_TRUE(pool_.WritePage(ctx, 0, 1, p, page.data()).ok());
  }
  EXPECT_TRUE(
      pool_.WritePage(ctx, 0, 1, 100, page.data()).IsOutOfMemory());
  // Overwriting an existing page is fine.
  EXPECT_TRUE(pool_.WritePage(ctx, 0, 1, 3, page.data()).ok());
}

TEST_F(RemotePoolTest, TransfersChargeFullPages) {
  std::array<uint8_t, kPageSize> page{};
  ExecContext ctx;
  net_.ResetStats();
  pool_.WritePage(ctx, 0, 1, 9, page.data()).ok();
  EXPECT_EQ(net_.total_bytes(), static_cast<uint64_t>(kPageSize));
}

TEST_F(RemotePoolTest, DropTenantRemovesAll) {
  std::array<uint8_t, kPageSize> page{};
  ExecContext ctx;
  pool_.WritePage(ctx, 0, 1, 1, page.data()).ok();
  pool_.WritePage(ctx, 0, 1, 2, page.data()).ok();
  pool_.WritePage(ctx, 0, 2, 3, page.data()).ok();
  pool_.DropTenant(1);
  EXPECT_FALSE(pool_.Contains(1, 1));
  EXPECT_TRUE(pool_.Contains(2, 3));
  EXPECT_EQ(pool_.pages_stored(), 1u);
}

}  // namespace
}  // namespace polarcxl::rdma
