// Integration tests for the experiment drivers: small-scale runs must show
// the paper's qualitative effects (read amplification, no CXL bottleneck,
// instant recovery, cheaper sharing).
#include <gtest/gtest.h>

#include "harness/instance_driver.h"
#include "harness/recovery_driver.h"
#include "harness/sharing_driver.h"

namespace polarcxl::harness {
namespace {

workload::SysbenchConfig TinySysbench() {
  workload::SysbenchConfig c;
  c.tables = 2;
  c.rows_per_table = 4000;
  return c;
}

PoolingConfig TinyPooling(engine::BufferPoolKind kind) {
  PoolingConfig c;
  c.kind = kind;
  c.instances = 2;
  c.lanes_per_instance = 4;
  c.sysbench = TinySysbench();
  c.warmup = Millis(30);
  c.measure = Millis(120);
  return c;
}

TEST(PoolingDriverTest, AllPoolKindsProduceThroughput) {
  for (auto kind :
       {engine::BufferPoolKind::kDram, engine::BufferPoolKind::kCxl,
        engine::BufferPoolKind::kTieredRdma}) {
    PoolingResult r = RunPooling(TinyPooling(kind));
    EXPECT_GT(r.metrics.Qps(), 1000.0);
    EXPECT_GT(r.metrics.latency.count(), 0u);
  }
}

TEST(PoolingDriverTest, CxlHasNoLocalDramAndLowBandwidth) {
  PoolingResult cxl = RunPooling(TinyPooling(engine::BufferPoolKind::kCxl));
  PoolingResult rdma =
      RunPooling(TinyPooling(engine::BufferPoolKind::kTieredRdma));
  EXPECT_EQ(cxl.local_dram_bytes, 0u);
  EXPECT_GT(rdma.local_dram_bytes, 0u);
  // Read amplification: the tiered design moves far more interconnect bytes
  // per query than direct CXL access.
  const double rdma_bytes_per_query =
      rdma.interconnect_gbps / std::max(1.0, rdma.metrics.Qps());
  const double cxl_bytes_per_query =
      cxl.interconnect_gbps / std::max(1.0, cxl.metrics.Qps());
  EXPECT_GT(rdma_bytes_per_query, 1.5 * cxl_bytes_per_query);
}

TEST(PoolingDriverTest, CxlThroughputTracksDram) {
  PoolingResult dram = RunPooling(TinyPooling(engine::BufferPoolKind::kDram));
  PoolingResult cxl = RunPooling(TinyPooling(engine::BufferPoolKind::kCxl));
  // Figure 3: CXL-BP within ~15% of DRAM-BP at small scale.
  EXPECT_GT(cxl.metrics.Qps(), 0.75 * dram.metrics.Qps());
  EXPECT_LE(cxl.metrics.Qps(), 1.05 * dram.metrics.Qps());
}

TEST(PoolingDriverTest, RdmaSaturatesWithMoreInstances) {
  PoolingConfig few = TinyPooling(engine::BufferPoolKind::kTieredRdma);
  few.instances = 2;
  few.lanes_per_instance = 8;
  PoolingConfig many = TinyPooling(engine::BufferPoolKind::kTieredRdma);
  many.instances = 10;
  many.lanes_per_instance = 8;
  PoolingResult a = RunPooling(few);
  PoolingResult b = RunPooling(many);
  // Ten instances deliver more than two, but nowhere near 5x: the shared
  // NIC saturates.
  EXPECT_GT(b.metrics.Qps(), a.metrics.Qps());
  EXPECT_LT(b.metrics.Qps(), 4.2 * a.metrics.Qps());
  EXPECT_GT(b.nic_gbps, 9.0);  // close to the 12 GB/s NIC
}

TEST(PoolingDriverTest, CxlScalesNearlyLinearly) {
  PoolingConfig few = TinyPooling(engine::BufferPoolKind::kCxl);
  few.instances = 1;
  PoolingConfig many = TinyPooling(engine::BufferPoolKind::kCxl);
  many.instances = 6;
  PoolingResult a = RunPooling(few);
  PoolingResult b = RunPooling(many);
  EXPECT_GT(b.metrics.Qps(), 4.5 * a.metrics.Qps());
}

// ---------- recovery driver ----------

RecoveryConfig BaseRecovery(RecoveryScheme scheme) {
  RecoveryConfig c;
  c.scheme = scheme;
  c.sysbench = TinySysbench();
  // Enough pages that per-page recovery costs dominate fixed overheads
  // (the regime the paper's testbed operates in).
  c.sysbench.tables = 4;
  c.sysbench.rows_per_table = 20000;
  c.lanes = 8;
  c.crash_at = Millis(2000);
  c.total = Millis(4000);
  c.bucket = Millis(50);
  c.checkpoint_interval = Millis(1000);
  c.process_restart = Millis(100);
  c.torn_updates = 4;
  // Equal pressure across schemes (the paper's methodology): pace each
  // lane at a rate every scheme can sustain.
  c.pace_interval = Millis(8);
  return c;
}

TEST(RecoveryDriverTest, ReadWriteRecoveryTimeOrdering) {
  RecoveryResult vanilla =
      RunRecoveryExperiment(BaseRecovery(RecoveryScheme::kVanilla));
  RecoveryResult rdma =
      RunRecoveryExperiment(BaseRecovery(RecoveryScheme::kRdmaBased));
  RecoveryResult polar =
      RunRecoveryExperiment(BaseRecovery(RecoveryScheme::kPolarRecv));

  for (const RecoveryResult* r : {&vanilla, &rdma, &polar}) {
    EXPECT_GT(r->pre_crash_qps, 0.0);
    EXPECT_GT(r->serving_at, r->crash_at);
    EXPECT_GE(r->warmed_at, r->serving_at);
  }
  // Paper Figure 10 (read-write): PolarRecv recovers first; the RDMA-based
  // scheme beats vanilla because page bases come from surviving remote
  // memory instead of storage.
  EXPECT_LT(polar.serving_at, rdma.serving_at);
  EXPECT_LT(rdma.serving_at, vanilla.serving_at);
  // PolarRecv repaired only the crash hazards, not the whole redo tail.
  EXPECT_GT(polar.polar.pages_in_use, polar.polar.pages_repaired);
  EXPECT_GT(vanilla.aries.records_applied, polar.polar.records_applied);
  EXPECT_GT(polar.polar.locked_pages, 0u);
  EXPECT_GT(polar.polar.too_new_pages, 0u);
}

TEST(RecoveryDriverTest, ReadOnlyWarmupOrdering) {
  RecoveryConfig base = BaseRecovery(RecoveryScheme::kVanilla);
  base.op = workload::SysbenchOp::kReadOnly;
  base.sysbench.tables = 2;
  base.sysbench.rows_per_table = 30000;
  base.lanes = 4;
  base.crash_at = Millis(400);
  base.total = Millis(1600);
  base.bucket = Millis(10);
  base.torn_updates = 0;
  base.pace_interval = 0;  // open loop: warm-up shows in throughput
  // Dataset (11.5 MB) >> LLC share, as at production scale.
  base.cpu_cache_bytes = 2ULL << 20;

  RecoveryConfig vanilla_cfg = base;
  RecoveryConfig rdma_cfg = base;
  rdma_cfg.scheme = RecoveryScheme::kRdmaBased;
  RecoveryConfig polar_cfg = base;
  polar_cfg.scheme = RecoveryScheme::kPolarRecv;

  RecoveryResult vanilla = RunRecoveryExperiment(vanilla_cfg);
  RecoveryResult rdma = RunRecoveryExperiment(rdma_cfg);
  RecoveryResult polar = RunRecoveryExperiment(polar_cfg);

  // No writes: every scheme is back to serving almost immediately...
  for (const RecoveryResult* r : {&vanilla, &rdma, &polar}) {
    EXPECT_LT(r->serving_at, r->crash_at + Millis(200));
  }
  // ...but warm-up differs: PolarRecv keeps the pool, the RDMA scheme
  // refills it from remote memory, vanilla refills from storage.
  const Nanos polar_gap = polar.warmed_at - polar.serving_at;
  const Nanos rdma_gap = rdma.warmed_at - rdma.serving_at;
  const Nanos vanilla_gap = vanilla.warmed_at - vanilla.serving_at;
  EXPECT_LE(polar_gap, rdma_gap);
  EXPECT_LE(rdma_gap, vanilla_gap);
  EXPECT_LT(polar_gap, vanilla_gap);
}

// ---------- sharing driver ----------

SharingConfig TinySharing(SharingMode mode, double shared_fraction) {
  SharingConfig c;
  c.mode = mode;
  c.nodes = 3;
  c.lanes_per_node = 3;
  c.sysbench.tables = 1;
  c.sysbench.rows_per_table = 2500;
  c.sysbench.num_nodes = 3;
  c.sysbench.shared_fraction = shared_fraction;
  c.op = workload::SysbenchOp::kPointUpdate;
  c.warmup = Millis(30);
  c.measure = Millis(120);
  return c;
}

TEST(SharingDriverTest, BothModesProduceThroughput) {
  for (auto mode : {SharingMode::kCxl, SharingMode::kRdma}) {
    SharingResult r = RunSharing(TinySharing(mode, 0.2));
    EXPECT_GT(r.metrics.Qps(), 1000.0);
  }
}

TEST(SharingDriverTest, CxlBeatsRdmaAndUsesNoLocalBuffers) {
  SharingResult cxl = RunSharing(TinySharing(SharingMode::kCxl, 0.4));
  SharingResult rdma = RunSharing(TinySharing(SharingMode::kRdma, 0.4));
  EXPECT_GT(cxl.metrics.Qps(), rdma.metrics.Qps());
  EXPECT_LT(cxl.local_dram_bytes, rdma.local_dram_bytes / 10);
  EXPECT_GT(cxl.invalidations, 0u);
  EXPECT_GT(rdma.invalidations, 0u);
}

TEST(SharingDriverTest, ContentionGrowsWithSharedFraction) {
  SharingResult low = RunSharing(TinySharing(SharingMode::kCxl, 0.1));
  SharingResult high = RunSharing(TinySharing(SharingMode::kCxl, 0.9));
  EXPECT_GT(high.total_lock_wait, low.total_lock_wait);
  EXPECT_GT(low.metrics.Qps(), high.metrics.Qps());
}

TEST(SharingDriverTest, TpccRunsOnBothModes) {
  SharingConfig c;
  c.bench = SharingBench::kTpcc;
  c.nodes = 2;
  c.lanes_per_node = 2;
  c.tpcc.warehouses = 2;
  c.tpcc.num_nodes = 2;
  c.tpcc.customers_per_district = 30;
  c.tpcc.items = 200;
  c.warmup = Millis(30);
  c.measure = Millis(120);
  for (auto mode : {SharingMode::kCxl, SharingMode::kRdma}) {
    c.mode = mode;
    SharingResult r = RunSharing(c);
    EXPECT_GT(r.metrics.Tps(), 100.0);
    EXPECT_GT(r.new_orders, 0u);
  }
}

TEST(SharingDriverTest, TatpRunsOnBothModes) {
  SharingConfig c;
  c.bench = SharingBench::kTatp;
  c.nodes = 2;
  c.lanes_per_node = 2;
  c.tatp.subscribers = 2000;
  c.tatp.num_nodes = 2;
  c.warmup = Millis(30);
  c.measure = Millis(120);
  for (auto mode : {SharingMode::kCxl, SharingMode::kRdma}) {
    c.mode = mode;
    SharingResult r = RunSharing(c);
    EXPECT_GT(r.metrics.Qps(), 1000.0);
  }
}

}  // namespace
}  // namespace polarcxl::harness
