// The parallel sweep runner must never change experiment results: each
// experiment owns its whole simulated world, so fanning a sweep out over
// threads is pure wall-clock parallelism. These tests pin that contract —
// bit-identical PoolingResults at any thread count, including with the
// measurement windows rescaled through POLAR_BENCH_SCALE.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "harness/instance_driver.h"
#include "harness/sweep_runner.h"

namespace polarcxl::harness {
namespace {

PoolingConfig SmallPooling(engine::BufferPoolKind kind) {
  PoolingConfig c;
  c.kind = kind;
  c.instances = 2;
  c.lanes_per_instance = 3;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 1500;
  c.warmup = Millis(10);
  c.measure = Millis(40);
  return c;
}

void ExpectBitIdentical(const PoolingResult& a, const PoolingResult& b) {
  EXPECT_EQ(a.metrics.queries, b.metrics.queries);
  EXPECT_EQ(a.metrics.events, b.metrics.events);
  EXPECT_EQ(a.metrics.latency.max(), b.metrics.latency.max());
  EXPECT_DOUBLE_EQ(a.interconnect_gbps, b.interconnect_gbps);
  EXPECT_EQ(a.line_hits, b.line_hits);
  EXPECT_EQ(a.line_misses, b.line_misses);
  EXPECT_EQ(a.lane_steps, b.lane_steps);
  EXPECT_EQ(a.virtual_end, b.virtual_end);
  EXPECT_EQ(a.breakdown.total, b.breakdown.total);
  EXPECT_EQ(a.breakdown.mem, b.breakdown.mem);
}

TEST(SweepRunnerTest, SweepThreadsReadsEnv) {
  setenv("POLAR_SWEEP_THREADS", "3", 1);
  EXPECT_EQ(SweepThreads(), 3u);
  setenv("POLAR_SWEEP_THREADS", "0", 1);  // values < 1 clamp to 1
  EXPECT_EQ(SweepThreads(), 1u);
  unsetenv("POLAR_SWEEP_THREADS");
  EXPECT_GE(SweepThreads(), 1u);
}

TEST(SweepRunnerTest, IndexedTasksCoverEveryIndexOnce) {
  for (unsigned threads : {1u, 2u, 5u, 16u}) {
    constexpr size_t kN = 103;
    std::vector<std::atomic<int>> counts(kN);
    RunIndexedTasks(
        kN, [&](size_t i) { counts[i].fetch_add(1); }, threads);
    for (size_t i = 0; i < kN; i++) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
  // Empty sweep is a no-op.
  RunIndexedTasks(0, [](size_t) { FAIL(); }, 4);
}

TEST(SweepRunnerTest, PoolingSweepBitIdenticalAcrossThreadCounts) {
  std::vector<PoolingConfig> configs = {
      SmallPooling(engine::BufferPoolKind::kCxl),
      SmallPooling(engine::BufferPoolKind::kTieredRdma),
      SmallPooling(engine::BufferPoolKind::kDram),
  };
  auto run = [](const PoolingConfig& c) { return RunPooling(c); };
  const auto serial =
      RunSweep<PoolingConfig, PoolingResult>(configs, run, /*threads=*/1);
  const auto parallel =
      RunSweep<PoolingConfig, PoolingResult>(configs, run, /*threads=*/4);
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (size_t i = 0; i < configs.size(); i++) {
    SCOPED_TRACE(i);
    ExpectBitIdentical(serial[i], parallel[i]);
  }
}

TEST(SweepRunnerTest, ScaledWindowsStayDeterministicAcrossThreadCounts) {
  // The figure benches scale their measurement windows via POLAR_BENCH_SCALE;
  // a rescaled sweep must still be thread-count independent.
  setenv("POLAR_BENCH_SCALE", "0.5", 1);
  PoolingConfig base = SmallPooling(engine::BufferPoolKind::kCxl);
  base.warmup = bench::Scaled(Millis(20));
  base.measure = bench::Scaled(Millis(80));
  EXPECT_EQ(base.measure, Millis(40));  // scale actually applied
  std::vector<PoolingConfig> configs = {base, base, base, base};
  configs[1].seed = 7;
  configs[2].kind = engine::BufferPoolKind::kTieredRdma;
  configs[3].sysbench.rows_per_table = 2000;
  auto run = [](const PoolingConfig& c) { return RunPooling(c); };
  const auto serial =
      RunSweep<PoolingConfig, PoolingResult>(configs, run, /*threads=*/1);
  const auto parallel =
      RunSweep<PoolingConfig, PoolingResult>(configs, run, /*threads=*/3);
  unsetenv("POLAR_BENCH_SCALE");
  for (size_t i = 0; i < configs.size(); i++) {
    SCOPED_TRACE(i);
    ExpectBitIdentical(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace polarcxl::harness
