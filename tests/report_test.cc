// Tests for the reporting/metrics utilities used by the benchmark harness.
#include <gtest/gtest.h>

#include "harness/metrics.h"
#include "harness/report.h"

namespace polarcxl::harness {
namespace {

TEST(FormatTest, Numbers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.14159, 0), "3");
  EXPECT_EQ(FmtK(1234567), "1234.6K");
  EXPECT_EQ(FmtK(500), "0.5K");
  EXPECT_EQ(FmtGbps(11.994), "11.99GB/s");
  EXPECT_EQ(FmtPct(0.625), "62.5%");
  EXPECT_EQ(FmtUs(12345), "12.3us");
  EXPECT_EQ(FmtSecs(1.25e9), "1.25s");
}

TEST(RunMetricsTest, RatesFromWindow) {
  RunMetrics m;
  m.queries = 1000;
  m.events = 100;
  m.window = Secs(0.5);
  EXPECT_DOUBLE_EQ(m.Qps(), 2000.0);
  EXPECT_DOUBLE_EQ(m.Tps(), 200.0);
}

TEST(RunMetricsTest, EmptyWindowIsZero) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.Qps(), 0.0);
  EXPECT_DOUBLE_EQ(m.Tps(), 0.0);
  EXPECT_DOUBLE_EQ(m.AvgLatencyUs(), 0.0);
}

TEST(RunMetricsTest, LatencyPercentiles) {
  RunMetrics m;
  for (int i = 1; i <= 100; i++) m.latency.Add(i * 1000);
  EXPECT_NEAR(m.AvgLatencyUs(), 50.5, 0.1);
  EXPECT_NEAR(m.P95LatencyUs(), 95.0, 4.0);
}

TEST(BandwidthProbeTest, DeltaOverWindow) {
  BandwidthProbe probe;
  probe.before = 1000;
  probe.after = 1000 + 3ULL * 1000 * 1000 * 1000;  // +3 GB
  EXPECT_NEAR(probe.Gbps(Secs(1)), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(probe.Gbps(0), 0.0);
}

TEST(ReportTableTest, PrintsAlignedRows) {
  ReportTable table("unit", {"a", "column-b"});
  table.AddRow({"1", "2"});
  table.AddRow({"333333", "4"});
  // Printing must not crash and row arity is enforced.
  table.Print();
  EXPECT_DEATH(table.AddRow({"only-one"}), "POLAR_CHECK");
}

}  // namespace
}  // namespace polarcxl::harness
