// Tests for the multi-primary sharing layer: distributed locks, coherency
// flags, buffer fusion server, and both shared buffer pool implementations
// driven by two real database nodes over one dataset.
#include <gtest/gtest.h>

#include <memory>

#include "engine/database.h"
#include "sharing/buffer_fusion.h"
#include "sharing/mp_node.h"
#include "sharing/rdma_sharing.h"
#include "tests/test_world.h"

namespace polarcxl::sharing {
namespace {

using engine::Database;
using engine::DatabaseEnv;
using engine::DatabaseOptions;
using sim::ExecContext;

// ---------- DistLockManager ----------

TEST(DistLockTest, CxlTransportChargesRoundTrip) {
  DistLockManager locks(std::make_unique<CxlLockTransport>(2600));
  ExecContext ctx;
  locks.AcquireExclusive(ctx, 0, 7);
  EXPECT_EQ(ctx.now, 2600);
  ctx.now = 10000;
  locks.ReleaseExclusive(ctx, 0, 7);
  EXPECT_EQ(ctx.now, 10000 + 1300);
}

TEST(DistLockTest, ConflictQueuesInVirtualTime) {
  DistLockManager locks(std::make_unique<CxlLockTransport>(0));
  ExecContext a;
  locks.AcquireExclusive(a, 0, 7);
  a.now = 50000;
  locks.ReleaseExclusive(a, 0, 7);

  ExecContext b;
  b.now = 20000;
  locks.AcquireExclusive(b, 1, 7);
  // Waited past the spin threshold: grant time plus one context switch.
  EXPECT_EQ(b.now, 50000 + DistLockManager::kContextSwitchCost);
  EXPECT_EQ(locks.table().contended_acquisitions(), 1u);

  // A short wait spins: no context-switch penalty.
  ExecContext c;
  c.now = 60000;
  locks.ReleaseExclusive(b, 1, 7);  // ends at b.now (66000)
  locks.AcquireExclusive(c, 2, 7);
  EXPECT_EQ(c.now, b.now);
}

TEST(DistLockTest, RdmaTransportConsumesNic) {
  rdma::RdmaNetwork net;
  net.RegisterHost(0);
  net.RegisterHost(9);
  DistLockManager locks(std::make_unique<RdmaLockTransport>(&net, 9));
  ExecContext ctx;
  locks.AcquireShared(ctx, 0, 3);
  EXPECT_GE(ctx.now, net.latency().rdma_rpc_round_trip);
  EXPECT_GT(net.total_ops(), 0u);
}

// ---------- shared world fixture ----------

/// The multi-primary cluster shape of TestWorld: bigger CXL device, NIC
/// hosts 0/1/200 (200 = fat memory-server NIC), and no eager host-0 fabric
/// attachment — each test attaches the nodes it wants so switch-port
/// numbering stays under its control.
struct MpWorld : TestWorld {
  static Options MpOptions() {
    Options o;
    o.cxl_device_bytes = 256ull << 20;
    o.attach_host0 = false;
    o.mp_hosts = true;
    return o;
  }
  MpWorld() : TestWorld(MpOptions()) {}
};

// ---------- CoherencyFlagTable ----------

TEST(CoherencyFlagsTest, FlagsAreVisibleAcrossHosts) {
  MpWorld world;
  cxl::CxlAccessor* server = world.Attach(90);
  cxl::CxlAccessor* node = world.Attach(0);
  CoherencyFlagTable flags(0, /*slots=*/16, /*max_nodes=*/4);
  ExecContext sctx;
  ExecContext nctx;

  EXPECT_EQ(flags.Load(nctx, node, 3, 1).invalid, 0u);
  flags.SetInvalid(sctx, server, 3, 1);
  EXPECT_EQ(flags.Load(nctx, node, 3, 1).invalid, 1u);
  EXPECT_EQ(flags.Load(nctx, node, 3, 0).invalid, 0u);  // per-node isolation
  flags.ClearInvalid(nctx, node, 3, 1);
  EXPECT_EQ(flags.Load(nctx, node, 3, 1).invalid, 0u);

  flags.SetRemoval(sctx, server, 3, 1);
  EXPECT_EQ(flags.Load(nctx, node, 3, 1).removal, 1u);
}

TEST(CoherencyFlagsTest, UncachedReadsPayDeviceLatency) {
  MpWorld world;
  cxl::CxlAccessor* node = world.Attach(0);
  sim::CpuCacheSim cache(1 << 20);
  ExecContext ctx;
  ctx.cache = &cache;
  CoherencyFlagTable flags(0, 16, 4);
  flags.Load(ctx, node, 1, 1);
  const Nanos first = ctx.now;
  flags.Load(ctx, node, 1, 1);
  // Second read costs the same: the flag is never served from CPU cache.
  EXPECT_NEAR(static_cast<double>(ctx.now - first), static_cast<double>(first),
              5);
}

// ---------- BufferFusionServer ----------

class BufferFusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_acc_ = world_.Attach(90);
    locks_ = std::make_unique<DistLockManager>(
        std::make_unique<CxlLockTransport>(2600));
    BufferFusionServer::Options so;
    so.dbp_pages = 8;
    so.max_nodes = 4;
    ExecContext ctx;
    auto server = BufferFusionServer::Create(ctx, so, server_acc_,
                                             world_.manager.get(),
                                             &world_.store, locks_.get());
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
  }

  MpWorld world_;
  cxl::CxlAccessor* server_acc_ = nullptr;
  std::unique_ptr<DistLockManager> locks_;
  std::unique_ptr<BufferFusionServer> server_;
};

TEST_F(BufferFusionTest, SamePageSameSlotAcrossNodes) {
  ExecContext ctx;
  auto a = server_->GetPage(ctx, 0, 42);
  auto b = server_->GetPage(ctx, 1, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->slot, b->slot);
  EXPECT_EQ(a->data_off, b->data_off);
  EXPECT_TRUE(a->fresh);
  EXPECT_FALSE(b->fresh);
  EXPECT_EQ(server_->ActiveMask(42), 0b11u);
}

TEST_F(BufferFusionTest, WriteUnlockNotifySetsOtherNodesFlags) {
  ExecContext ctx;
  auto a = server_->GetPage(ctx, 0, 42);
  server_->GetPage(ctx, 1, 42).ok();
  server_->GetPage(ctx, 2, 42).ok();
  server_->WriteUnlockNotify(ctx, /*writer=*/0, 42);
  cxl::CxlAccessor* n1 = world_.Attach(1);
  ExecContext nctx;
  EXPECT_EQ(server_->flags().Load(nctx, n1, a->slot, 1).invalid, 1u);
  EXPECT_EQ(server_->flags().Load(nctx, n1, a->slot, 2).invalid, 1u);
  EXPECT_EQ(server_->flags().Load(nctx, n1, a->slot, 0).invalid, 0u);
}

TEST_F(BufferFusionTest, RecycleEvictsLruAndRaisesRemoval) {
  ExecContext ctx;
  for (PageId p = 0; p < 8; p++) {
    ASSERT_TRUE(server_->GetPage(ctx, 0, p).ok());
  }
  EXPECT_EQ(server_->free_slots(), 0u);
  // Touch pages 1..7 again so page 0 is LRU.
  for (PageId p = 1; p < 8; p++) server_->GetPage(ctx, 0, p).ok();
  auto slot0 = server_->GetPage(ctx, 0, 1);  // find any slot for flag check
  ASSERT_TRUE(slot0.ok());

  // A 9th page forces a recycle of page 0.
  auto g = server_->GetPage(ctx, 0, 100);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(server_->HasPage(0));
  EXPECT_TRUE(server_->HasPage(100));
  // Page 0's content was persisted to the store before reuse.
  EXPECT_TRUE(world_.store.Contains(0));
}

TEST_F(BufferFusionTest, RpcCostCharged) {
  ExecContext ctx;
  server_->GetPage(ctx, 0, 5).ok();
  EXPECT_GE(ctx.now, 2600);
}

// ---------- two real nodes sharing one dataset (CXL protocol) ----------

class CxlSharingIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    locks_ = std::make_unique<DistLockManager>(
        std::make_unique<CxlLockTransport>(2600));
    BufferFusionServer::Options so;
    so.dbp_pages = 2048;
    so.max_nodes = 8;
    ExecContext ctx;
    auto server =
        BufferFusionServer::Create(ctx, so, world_.Attach(90),
                                   world_.manager.get(), &world_.store,
                                   locks_.get());
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);

    for (NodeId n = 0; n < 2; n++) {
      CxlSharedBufferPool::Options po;
      po.node = n;
      auto pool = std::make_unique<CxlSharedBufferPool>(
          po, world_.Attach(n), server_.get(), locks_.get(), &world_.store);
      pools_[n] = pool.get();
      DatabaseEnv env;
      env.store = &world_.store;
      env.log = &world_.log;
      DatabaseOptions opt;
      opt.node = n;
      auto db = n == 0 ? Database::CreateWithPool(ctx, env, opt,
                                                  std::move(pool))
                       : Database::OpenWithPool(ctx, env, opt,
                                                std::move(pool));
      ASSERT_TRUE(db.ok());
      dbs_[n] = std::move(*db);
      if (n == 0) {
        auto t = dbs_[0]->CreateTable(ctx, "t", 64);
        ASSERT_TRUE(t.ok());
        for (uint64_t k = 1; k <= 500; k++) {
          ASSERT_TRUE((*t)->Insert(ctx, k, std::string(64, 'a')).ok());
        }
        dbs_[0]->CommitTransaction(ctx);
      }
    }
  }

  MpWorld world_;
  std::unique_ptr<DistLockManager> locks_;
  std::unique_ptr<BufferFusionServer> server_;
  CxlSharedBufferPool* pools_[2] = {};
  std::unique_ptr<Database> dbs_[2];
};

TEST_F(CxlSharingIntegrationTest, WritesByOneNodeVisibleToOther) {
  ExecContext a;
  a.now = Millis(1);
  ExecContext b;
  b.now = Millis(2);
  ASSERT_TRUE(
      dbs_[0]->table(size_t{0})->Update(a, 7, std::string(64, 'Z')).ok());
  auto got = dbs_[1]->table(size_t{0})->Get(b, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::string(64, 'Z'));
}

TEST_F(CxlSharingIntegrationTest, InvalidationObservedAfterRemoteWrite) {
  // Node 1 reads the row (caches the page), node 0 writes it, node 1 reads
  // again -> must observe the invalid flag and drop its CPU cache.
  ExecContext b;
  b.now = Millis(1);
  ASSERT_TRUE(dbs_[1]->table(size_t{0})->Get(b, 7).ok());
  const uint64_t inv_before = pools_[1]->invalidations_observed();

  ExecContext a;
  a.now = Millis(2);
  ASSERT_TRUE(
      dbs_[0]->table(size_t{0})->Update(a, 7, std::string(64, 'Q')).ok());

  b.now = Millis(3);
  auto got = dbs_[1]->table(size_t{0})->Get(b, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::string(64, 'Q'));
  EXPECT_GT(pools_[1]->invalidations_observed(), inv_before);
}

TEST_F(CxlSharingIntegrationTest, OnlyDirtyLinesAreFlushed) {
  ExecContext a;
  a.cache = dbs_[0]->cache();  // dirty-line tracking needs the CPU cache
  a.now = Millis(1);
  const uint64_t before = pools_[0]->dirty_lines_flushed();
  // A 4-byte update dirties a handful of lines (entry + header + LSN), far
  // fewer than the 256 lines a full-page flush would move.
  ASSERT_TRUE(dbs_[0]
                  ->table(size_t{0})
                  ->UpdateColumn(a, 7, 0, Slice("abcd", 4))
                  .ok());
  const uint64_t flushed = pools_[0]->dirty_lines_flushed() - before;
  EXPECT_GT(flushed, 0u);
  EXPECT_LT(flushed, 32u);
}

TEST_F(CxlSharingIntegrationTest, ConcurrentWritersSerializeOnPageLock) {
  ExecContext a;
  a.now = Millis(1);
  ExecContext b;
  b.now = Millis(1);
  ASSERT_TRUE(
      dbs_[0]->table(size_t{0})->Update(a, 7, std::string(64, 'x')).ok());
  ASSERT_TRUE(
      dbs_[1]->table(size_t{0})->Update(b, 7, std::string(64, 'y')).ok());
  EXPECT_GT(locks_->table().contended_acquisitions(), 0u);
}

// ---------- RDMA sharing baseline ----------

class RdmaSharingIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    group_ = std::make_unique<RdmaSharingGroup>(&world_.net, 200, 4096,
                                                &world_.store);
    ExecContext ctx;
    for (NodeId n = 0; n < 2; n++) {
      sim::MemorySpace::Options mo;
      mo.name = "dram" + std::to_string(n);
      drams_[n] = std::make_unique<sim::MemorySpace>(mo);
      RdmaSharedBufferPool::Options po;
      po.node = n;
      po.lbp_capacity_pages = 256;
      po.phys_base = (1ULL << 46) + (static_cast<uint64_t>(n) << 38);
      auto pool = std::make_unique<RdmaSharedBufferPool>(po, drams_[n].get(),
                                                         group_.get());
      pools_[n] = pool.get();
      DatabaseEnv env;
      env.store = &world_.store;
      env.log = &world_.log;
      DatabaseOptions opt;
      opt.node = n;
      auto db = n == 0 ? Database::CreateWithPool(ctx, env, opt,
                                                  std::move(pool))
                       : Database::OpenWithPool(ctx, env, opt,
                                                std::move(pool));
      ASSERT_TRUE(db.ok());
      dbs_[n] = std::move(*db);
      if (n == 0) {
        auto t = dbs_[0]->CreateTable(ctx, "t", 64);
        ASSERT_TRUE(t.ok());
        for (uint64_t k = 1; k <= 500; k++) {
          ASSERT_TRUE((*t)->Insert(ctx, k, std::string(64, 'a')).ok());
        }
        dbs_[0]->CommitTransaction(ctx);
      }
    }
  }

  MpWorld world_;
  std::unique_ptr<RdmaSharingGroup> group_;
  std::unique_ptr<sim::MemorySpace> drams_[2];
  RdmaSharedBufferPool* pools_[2] = {};
  std::unique_ptr<Database> dbs_[2];
};

TEST_F(RdmaSharingIntegrationTest, WritesByOneNodeVisibleToOther) {
  ExecContext a;
  a.now = Millis(1);
  ExecContext b;
  b.now = Millis(2);
  ASSERT_TRUE(
      dbs_[0]->table(size_t{0})->Update(a, 7, std::string(64, 'Z')).ok());
  auto got = dbs_[1]->table(size_t{0})->Get(b, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::string(64, 'Z'));
}

TEST_F(RdmaSharingIntegrationTest, RemoteWriteInvalidatesLocalCopy) {
  ExecContext b;
  b.now = Millis(1);
  ASSERT_TRUE(dbs_[1]->table(size_t{0})->Get(b, 7).ok());
  const uint64_t inv_before = pools_[1]->invalidations_received();

  ExecContext a;
  a.now = Millis(2);
  ASSERT_TRUE(
      dbs_[0]->table(size_t{0})->Update(a, 7, std::string(64, 'Q')).ok());
  EXPECT_GT(pools_[1]->invalidations_received(), inv_before);

  b.now = Millis(3);
  auto got = dbs_[1]->table(size_t{0})->Get(b, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::string(64, 'Q'));
}

TEST_F(RdmaSharingIntegrationTest, WriteUnlockShipsFullPage) {
  // Prime: both nodes read the page.
  ExecContext b;
  b.now = Millis(1);
  ASSERT_TRUE(dbs_[1]->table(size_t{0})->Get(b, 7).ok());
  ExecContext a;
  a.now = Millis(2);
  ASSERT_TRUE(dbs_[0]->table(size_t{0})->Get(a, 7).ok());

  world_.net.ResetStats();
  a.now = Millis(3);
  ASSERT_TRUE(dbs_[0]
                  ->table(size_t{0})
                  ->UpdateColumn(a, 7, 0, Slice("abcd", 4))
                  .ok());
  // A 4-byte change moved at least one full page over the wire.
  EXPECT_GE(world_.net.total_bytes(), static_cast<uint64_t>(kPageSize));
}

TEST_F(RdmaSharingIntegrationTest, CxlSynchronizesFarFewerBytes) {
  // Head-to-head on the identical logical operation: bytes moved through
  // the shared tier for a 4-byte update.
  // RDMA side:
  ExecContext a;
  a.now = Millis(1);
  ASSERT_TRUE(dbs_[0]->table(size_t{0})->Get(a, 9).ok());  // warm
  world_.net.ResetStats();
  a.now = Millis(2);
  ASSERT_TRUE(dbs_[0]
                  ->table(size_t{0})
                  ->UpdateColumn(a, 9, 0, Slice("abcd", 4))
                  .ok());
  const uint64_t rdma_bytes = world_.net.total_bytes();
  // CXL equivalent ships only dirtied lines; bound it generously.
  EXPECT_GT(rdma_bytes, 16u * 1024);
  EXPECT_LT(32u * kCacheLineSize, rdma_bytes);
}

}  // namespace
}  // namespace polarcxl::sharing
