// Failure-injection tests: crash the database at many different points and
// verify recovery invariants every time; exercise capacity-exhaustion and
// fallback paths; verify the WAL rule at the pool boundary.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "engine/database.h"
#include "recovery/polar_recv.h"
#include "recovery/recovery.h"
#include "tests/test_world.h"

namespace polarcxl {
namespace {

using bufferpool::CxlBufferPool;
using engine::BufferPoolKind;
using engine::Database;
using engine::DatabaseEnv;
using engine::DatabaseOptions;
using sim::ExecContext;

/// Crash after `ops_before_crash` random operations; recover with PolarRecv
/// and check against the committed reference.
class CrashPointTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointTest, PolarRecvRestoresCommittedStateAtAnyCrashPoint) {
  TestWorld world;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kCxl;
  opt.pool_pages = 512;
  ExecContext ctx;
  auto db = std::move(*Database::Create(ctx, world.Env(), opt));
  ctx.cache = db->cache();
  auto table = *db->CreateTable(ctx, "t", 48);

  std::map<uint64_t, std::string> committed;
  Rng rng(GetParam());
  const int ops = GetParam() * 37 % 900 + 100;  // 100..999 ops
  for (int i = 0; i < ops; i++) {
    const uint64_t key = rng.Uniform(300);
    std::string val(48, static_cast<char>('a' + rng.Uniform(26)));
    if (committed.count(key) == 0) {
      POLAR_CHECK(table->Insert(ctx, key, val).ok());
    } else {
      POLAR_CHECK(table->Update(ctx, key, val).ok());
    }
    committed[key] = val;
    // Commit (flush) most of the time; occasionally checkpoint.
    if (rng.Chance(0.8)) db->CommitTransaction(ctx);
    if (i % 200 == 199) db->Checkpoint(ctx);
  }
  db->CommitTransaction(ctx);

  // A final burst that never becomes durable: the crash erases it.
  for (int i = 0; i < static_cast<int>(rng.Uniform(10)); i++) {
    table->Update(ctx, rng.Uniform(300), std::string(48, 'Z')).ok();
  }

  const MemOffset region = db->cxl_region();
  const Nanos crash_time = ctx.now;
  world.log.LoseUnflushedTail();
  db.reset();

  ExecContext rctx;
  rctx.now = crash_time;
  CxlBufferPool::Options po;
  po.capacity_pages = 512;
  auto pool = std::move(
      *CxlBufferPool::Attach(rctx, po, region, world.acc, &world.store));
  pool->SetWal(&world.log);
  recovery::PolarRecv(rctx, pool.get(), &world.log, sim::CpuCostModel{});
  auto db2 = std::move(
      *Database::OpenWithPool(rctx, world.Env(), opt, std::move(pool)));

  std::vector<std::pair<uint64_t, std::string>> out;
  ASSERT_TRUE(db2->table(size_t{0})->Scan(rctx, 0, 1 << 20, &out).ok());
  ASSERT_EQ(out.size(), committed.size());
  size_t i = 0;
  for (const auto& [k, v] : committed) {
    EXPECT_EQ(out[i].first, k);
    EXPECT_EQ(out[i].second, v) << "key " << k;
    i++;
  }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashPointTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/// A second crash immediately after (or during) recovery must be harmless:
/// PolarRecv is idempotent over an already-recovered region.
TEST(DoubleCrashTest, PolarRecvIsIdempotent) {
  TestWorld world;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kCxl;
  opt.pool_pages = 256;
  ExecContext ctx;
  auto db = std::move(*Database::Create(ctx, world.Env(), opt));
  ctx.cache = db->cache();
  auto table = *db->CreateTable(ctx, "t", 48);
  for (uint64_t k = 0; k < 500; k++) {
    POLAR_CHECK(table->Insert(ctx, k, std::string(48, 'a' + k % 26)).ok());
  }
  db->CommitTransaction(ctx);
  // Unflushed tail + a torn page, then crash.
  table->Update(ctx, 7, std::string(48, 'Z')).ok();
  const MemOffset region = db->cxl_region();
  Nanos t = ctx.now;
  world.log.LoseUnflushedTail();
  db.reset();

  for (int crash = 0; crash < 3; crash++) {
    ExecContext rctx;
    rctx.now = t;
    CxlBufferPool::Options po;
    po.capacity_pages = 256;
    auto pool = std::move(
        *CxlBufferPool::Attach(rctx, po, region, world.acc, &world.store));
    pool->SetWal(&world.log);
    recovery::PolarRecv(rctx, pool.get(), &world.log, sim::CpuCostModel{});
    auto db2 = std::move(
        *Database::OpenWithPool(rctx, world.Env(), opt, std::move(pool)));
    for (uint64_t k = 0; k < 500; k += 53) {
      auto got = db2->table(size_t{0})->Get(rctx, k);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, std::string(48, 'a' + k % 26)) << "crash " << crash;
    }
    t = rctx.now;
    world.log.LoseUnflushedTail();  // crash again without new work
    db2.reset();
  }
}

/// PolarRecv with a pool smaller than the dataset: evicted pages live only
/// in storage; surviving in-use blocks are reused; the union is complete.
TEST(SmallPoolTest, PolarRecvWithEvictionsRestoresEverything) {
  TestWorld world;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kCxl;
  opt.pool_pages = 16;  // dataset needs ~25 pages: constant eviction
  ExecContext ctx;
  auto db = std::move(*Database::Create(ctx, world.Env(), opt));
  ctx.cache = db->cache();
  auto table = *db->CreateTable(ctx, "t", 64);
  std::map<uint64_t, std::string> reference;
  Rng rng(77);
  for (uint64_t k = 0; k < 2500; k++) {
    std::string val(64, 'a' + static_cast<char>(rng.Uniform(26)));
    POLAR_CHECK(table->Insert(ctx, k, val).ok());
    reference[k] = val;
  }
  db->CommitTransaction(ctx);

  const MemOffset region = db->cxl_region();
  const Nanos t = ctx.now;
  world.log.LoseUnflushedTail();
  db.reset();

  ExecContext rctx;
  rctx.now = t;
  CxlBufferPool::Options po;
  po.capacity_pages = 16;
  auto pool = std::move(
      *CxlBufferPool::Attach(rctx, po, region, world.acc, &world.store));
  pool->SetWal(&world.log);
  auto stats =
      recovery::PolarRecv(rctx, pool.get(), &world.log, sim::CpuCostModel{});
  EXPECT_LE(stats.pages_in_use, 16u);
  auto db2 = std::move(
      *Database::OpenWithPool(rctx, world.Env(), opt, std::move(pool)));
  std::vector<std::pair<uint64_t, std::string>> out;
  ASSERT_TRUE(db2->table(size_t{0})->Scan(rctx, 0, 1 << 20, &out).ok());
  ASSERT_EQ(out.size(), reference.size());
  size_t i = 0;
  for (const auto& [k, v] : reference) {
    ASSERT_EQ(out[i].first, k);
    ASSERT_EQ(out[i].second, v) << k;
    i++;
  }
}

// ---------- capacity exhaustion & fallback paths ----------

TEST(ExhaustionTest, CxlPoolCreationFailsWhenFabricFull) {
  TestWorld world;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kCxl;
  opt.pool_pages = 1 << 20;  // far beyond the 128 MiB device
  ExecContext ctx;
  auto db = Database::Create(ctx, world.Env(), opt);
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsOutOfMemory());
}

TEST(ExhaustionTest, FetchFailsWhenEveryFrameIsFixed) {
  TestWorld world;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kCxl;
  opt.pool_pages = 4;
  ExecContext ctx;
  auto db = std::move(*Database::Create(ctx, world.Env(), opt));
  std::vector<bufferpool::PageRef> pinned;
  for (PageId p = 0; p < 4; p++) {
    auto ref = db->pool()->Fetch(ctx, p, false);
    ASSERT_TRUE(ref.ok());
    pinned.push_back(*ref);
  }
  auto r = db->pool()->Fetch(ctx, 99, false);
  EXPECT_TRUE(r.status().IsBusy());
  for (PageId p = 0; p < 4; p++) {
    db->pool()->Unfix(ctx, pinned[p], p, false, 0);
  }
  EXPECT_TRUE(db->pool()->Fetch(ctx, 99, false).ok());
}

TEST(ExhaustionTest, TieredPoolFallsBackToStorageWhenRemoteFull) {
  TestWorld world;
  rdma::RdmaNetwork net;
  net.RegisterHost(0);
  rdma::RemoteMemoryPool remote(&net, 99, /*capacity_pages=*/4);
  DatabaseEnv env = world.Env();
  env.remote = &remote;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kTieredRdma;
  opt.pool_pages = 8;
  ExecContext ctx;
  auto db = std::move(*Database::Create(ctx, env, opt));
  auto table = *db->CreateTable(ctx, "t", 64);
  // Enough rows that evictions overflow the 4-page remote pool; the dirty
  // fallback path writes to storage instead of losing data.
  for (uint64_t k = 1; k <= 3000; k++) {
    ASSERT_TRUE(table->Insert(ctx, k, std::string(64, 'v')).ok()) << k;
  }
  db->CommitTransaction(ctx);
  for (uint64_t k = 1; k <= 3000; k += 311) {
    auto got = table->Get(ctx, k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, std::string(64, 'v'));
  }
}

TEST(ExhaustionTest, CatalogFullReported) {
  TestWorld world;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kDram;
  opt.pool_pages = 4096;
  ExecContext ctx;
  auto db = std::move(*Database::Create(ctx, world.Env(), opt));
  // The catalog caps at kMaxTrees; creating that many should eventually
  // fail gracefully, not corrupt the superblock.
  Status last = Status::OK();
  for (uint32_t i = 0; i <= Database::kMaxTrees; i++) {
    auto t = db->CreateTable(ctx, "t" + std::to_string(i), 16);
    if (!t.ok()) {
      last = t.status();
      break;
    }
  }
  EXPECT_TRUE(last.IsOutOfMemory());
}

// ---------- WAL rule ----------

TEST(WalRuleTest, PageNeverReachesStorageAheadOfItsRedo) {
  // A tiny pool forces evictions while the log buffer is unflushed; the
  // WAL rule must flush the log before each page write-back, so at every
  // point in time: store page LSN <= flushed LSN.
  TestWorld world;
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kCxl;
  opt.pool_pages = 8;
  ExecContext ctx;
  auto db = std::move(*Database::Create(ctx, world.Env(), opt));
  auto table = *db->CreateTable(ctx, "t", 64);
  Rng rng(5);
  for (int i = 0; i < 2000; i++) {
    const uint64_t k = 1 + rng.Uniform(500);
    if (table->Update(ctx, k, std::string(64, 'u')).IsNotFound()) {
      POLAR_CHECK(table->Insert(ctx, k, std::string(64, 'u')).ok());
    }
    // Deliberately do NOT flush the log; evictions must do it themselves.
  }
  // Verify the invariant over every page image in the store.
  for (PageId p = 0; p < 64; p++) {
    const uint8_t* img = world.store.RawPage(p);
    if (img == nullptr) continue;
    Lsn page_lsn;
    std::memcpy(&page_lsn, img + 8, sizeof(page_lsn));
    EXPECT_LE(page_lsn, world.log.flushed_lsn()) << "page " << p;
  }
}

// ---------- wrong-region / corruption paths ----------

TEST(CorruptionTest, AttachToForeignRegionFailsCleanly) {
  TestWorld world;
  ExecContext ctx;
  // A region that was never formatted as a pool.
  auto raw = world.manager->Allocate(ctx, 9, CxlBufferPool::RegionBytes(16));
  ASSERT_TRUE(raw.ok());
  CxlBufferPool::Options po;
  po.capacity_pages = 16;
  auto r = CxlBufferPool::Attach(ctx, po, *raw, world.acc, &world.store);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(CorruptionTest, AttachWithWrongCapacityRejected) {
  TestWorld world;
  ExecContext ctx;
  CxlBufferPool::Options po;
  po.capacity_pages = 16;
  po.tenant = 1;
  auto pool = std::move(*CxlBufferPool::Create(ctx, po, world.acc,
                                               world.manager.get(),
                                               &world.store));
  const MemOffset region = pool->region();
  pool.reset();
  po.capacity_pages = 32;
  auto r = CxlBufferPool::Attach(ctx, po, region, world.acc, &world.store);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace polarcxl
