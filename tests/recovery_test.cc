// Recovery tests: redo replay semantics, ARIES recovery on DRAM and tiered
// pools, PolarRecv on the CXL pool, and cross-scheme equivalence — after an
// identical crash the three schemes must converge to the same committed
// state. Crash hazards (torn pages, lost log tail, broken LRU) are injected
// through the pool's introspection surface.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "engine/database.h"
#include "recovery/polar_recv.h"
#include "recovery/recovery.h"
#include "tests/test_world.h"

namespace polarcxl::recovery {
namespace {

using bufferpool::CxlBlockMeta;
using bufferpool::CxlBufferPool;
using bufferpool::CxlPoolHeader;
using engine::BufferPoolKind;
using engine::Database;
using engine::DatabaseEnv;
using engine::DatabaseOptions;
using engine::PageView;
using sim::ExecContext;

constexpr uint16_t kRowSize = 96;

std::string Row(uint64_t key, char tag) {
  std::string row(kRowSize, tag);
  std::snprintf(row.data(), row.size(), "row-%llu-%c",
                static_cast<unsigned long long>(key), tag);
  return row;
}

// ---------- ApplyRecord ----------

TEST(ApplyRecordTest, RawOverwriteRespectsLsnRule) {
  uint8_t buf[kPageSize] = {};
  PageView page(buf);
  page.Format(1, 0, 8);
  page.set_lsn(100);

  storage::RedoRecord rec;
  rec.page_id = 1;
  rec.kind = storage::RedoKind::kRaw;
  rec.page_off = 200;
  rec.len = 4;
  rec.data = {1, 2, 3, 4};
  rec.lsn = 50;  // end_lsn = 50 + 28 = 78 < page lsn 100
  EXPECT_FALSE(ApplyRecord(page, rec));
  EXPECT_EQ(buf[200], 0);

  rec.lsn = 100;  // end_lsn 128 > 100
  EXPECT_TRUE(ApplyRecord(page, rec));
  EXPECT_EQ(buf[200], 1);
  EXPECT_EQ(page.lsn(), rec.end_lsn());
  // Idempotent: reapplying is a no-op.
  EXPECT_FALSE(ApplyRecord(page, rec));
}

TEST(ApplyRecordTest, EntryKindsReplayStructurally) {
  uint8_t buf[kPageSize] = {};
  PageView page(buf);

  storage::RedoRecord fmt;
  fmt.page_id = 3;
  fmt.kind = storage::RedoKind::kFormat;
  fmt.data = {0, 16, 0};  // leaf, value_size 16
  fmt.len = 3;
  fmt.lsn = 0;
  ASSERT_TRUE(ApplyRecord(page, fmt));
  ASSERT_TRUE(page.IsFormatted());
  EXPECT_EQ(page.value_size(), 16);

  storage::RedoRecord ins;
  ins.page_id = 3;
  ins.kind = storage::RedoKind::kInsertEntry;
  ins.data.resize(8 + 16, 0x7);
  const uint64_t key = 42;
  std::memcpy(ins.data.data(), &key, 8);
  ins.len = 24;
  ins.lsn = fmt.end_lsn();
  ASSERT_TRUE(ApplyRecord(page, ins));
  uint16_t idx;
  ASSERT_TRUE(page.Find(42, &idx));

  storage::RedoRecord del;
  del.page_id = 3;
  del.kind = storage::RedoKind::kEraseEntry;
  del.data.resize(8);
  std::memcpy(del.data.data(), &key, 8);
  del.len = 8;
  del.lsn = ins.end_lsn();
  ASSERT_TRUE(ApplyRecord(page, del));
  EXPECT_FALSE(page.Find(42, &idx));
  EXPECT_EQ(page.nkeys(), 0);
}

// ---------- crash scenario fixture ----------

/// Builds a workload history with a checkpoint in the middle, then crashes
/// with injected hazards. `reference` holds the committed (durable) state.
class CrashScenario {
 public:
  explicit CrashScenario(BufferPoolKind kind) : kind_(kind) {
    DatabaseOptions opt;
    opt.pool_kind = kind;
    opt.pool_pages = 256;
    auto db = Database::Create(ctx_, world_.Env(), opt);
    POLAR_CHECK(db.ok());
    db_ = std::move(*db);
    auto t = db_->CreateTable(ctx_, "t", kRowSize);
    POLAR_CHECK(t.ok());

    // Phase 1: committed inserts, then a checkpoint.
    for (uint64_t k = 0; k < 600; k++) {
      POLAR_CHECK(tree()->Insert(ctx_, k, Row(k, 'a')).ok());
      reference_[k] = Row(k, 'a');
    }
    db_->CommitTransaction(ctx_);
    db_->Checkpoint(ctx_);

    // Phase 2: committed post-checkpoint updates/inserts/deletes (durable,
    // but newer than the checkpointed page images).
    Rng rng(17);
    for (int i = 0; i < 4000; i++) {
      const uint64_t k = rng.Uniform(700);
      switch (rng.Uniform(3)) {
        case 0:
          if (reference_.count(k) == 0) {
            POLAR_CHECK(tree()->Insert(ctx_, k, Row(k, 'b')).ok());
            reference_[k] = Row(k, 'b');
          }
          break;
        case 1:
          if (reference_.count(k) > 0) {
            POLAR_CHECK(tree()->Update(ctx_, k, Row(k, 'c')).ok());
            reference_[k] = Row(k, 'c');
          }
          break;
        case 2:
          if (reference_.count(k) > 0) {
            POLAR_CHECK(tree()->Delete(ctx_, k).ok());
            reference_.erase(k);
          }
          break;
      }
    }
    db_->CommitTransaction(ctx_);  // everything above is durable
  }

  engine::BTree* tree() { return db_->table(size_t{0})->tree(); }

  /// In-flight work at crash time: real updates whose redo never reaches
  /// storage ("too new" CXL pages), plus torn write-locked pages, plus a
  /// torn LRU manipulation. Only meaningful for the CXL pool.
  void InjectCxlHazards() {
    auto* pool = static_cast<CxlBufferPool*>(db_->pool());
    // (a) Updates without a log flush: lost tail.
    for (uint64_t k = 0; k < 20; k++) {
      if (reference_.count(k) > 0) {
        POLAR_CHECK(tree()->Update(ctx_, k, Row(k, 'z')).ok());
        // NOT reflected in reference_: the crash makes these vanish.
      }
    }
    // (b) Torn pages: scribble into two in-use leaf frames and leave them
    // write-locked, as an interrupted mtr would.
    uint32_t torn = 0;
    for (uint32_t b = 0; b < pool->num_blocks() && torn < 2; b++) {
      CxlBlockMeta m = pool->LoadMeta(ctx_, b);
      if (m.in_use == 0 || m.id == Database::kSuperblockPage) continue;
      PageView page(pool->FrameRaw(b));
      if (!page.is_leaf()) continue;
      std::memset(pool->FrameRaw(b) + 2000, 0xEF, 500);  // garbage
      m.lock_state = 1;
      pool->StoreMeta(ctx_, b, m);
      torn++;
    }
    POLAR_CHECK(torn == 2);
    // (c) Crash mid-LRU-manipulation.
    CxlPoolHeader h = pool->LoadHeader(ctx_);
    h.lru_mutex = 1;
    pool->StoreHeader(ctx_, h);
  }

  /// The crash: volatile state dies, durable state stays.
  MemOffset Crash() {
    MemOffset region = 0;
    if (kind_ == BufferPoolKind::kCxl) region = db_->cxl_region();
    world_.log.LoseUnflushedTail();
    db_.reset();
    return region;
  }

  /// Virtual time of the crash (recovery must not run "before" it).
  Nanos CrashTime() const { return ctx_.now; }

  /// Scans the recovered table and compares with the committed reference.
  void ExpectMatchesReference(Database* db) {
    std::vector<std::pair<uint64_t, std::string>> out;
    auto n = db->table(size_t{0})->Scan(ctx_, 0, 1 << 20, &out);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, reference_.size());
    size_t i = 0;
    for (const auto& [k, v] : reference_) {
      EXPECT_EQ(out[i].first, k) << i;
      EXPECT_EQ(out[i].second, v) << k;
      i++;
    }
  }

  TestWorld world_;
  ExecContext ctx_;
  BufferPoolKind kind_;
  std::unique_ptr<Database> db_;
  std::map<uint64_t, std::string> reference_;
};

DatabaseOptions RestartOptions(BufferPoolKind kind) {
  DatabaseOptions opt;
  opt.pool_kind = kind;
  opt.pool_pages = 256;
  return opt;
}

// ---------- ARIES (vanilla) ----------

// The ergonomic path: recover into a pool, then OpenWithPool.
TEST(AriesRecoveryTest, VanillaEndToEnd) {
  CrashScenario s(BufferPoolKind::kDram);
  s.Crash();

  ExecContext ctx;
  ctx.now = s.CrashTime();
  DatabaseOptions opt = RestartOptions(BufferPoolKind::kDram);
  // Build the cold pool manually so the superblock is NOT reformatted.
  sim::MemorySpace::Options mo;
  mo.name = "dram-recover";
  auto dram = std::make_unique<sim::MemorySpace>(mo);
  bufferpool::DramBufferPool::Options po;
  po.capacity_pages = 256;
  auto pool = std::make_unique<bufferpool::DramBufferPool>(
      po, dram.get(), &s.world_.store);
  pool->SetWal(&s.world_.log);

  auto stats = RecoverAries(ctx, pool.get(), &s.world_.log, opt.costs);
  EXPECT_GT(stats.records_applied, 0u);

  auto db = Database::OpenWithPool(ctx, s.world_.Env(), opt,
                                   std::move(pool));
  ASSERT_TRUE(db.ok());
  s.ExpectMatchesReference(db->get());
}

TEST(AriesRecoveryTest, TieredPoolUsesSurvivingRemoteMemory) {
  CrashScenario s(BufferPoolKind::kTieredRdma);
  s.Crash();
  ASSERT_GT(s.world_.remote.pages_stored(), 0u);

  ExecContext ctx;
  ctx.now = s.CrashTime();
  DatabaseOptions opt = RestartOptions(BufferPoolKind::kTieredRdma);
  sim::MemorySpace::Options mo;
  mo.name = "dram-recover";
  auto dram = std::make_unique<sim::MemorySpace>(mo);
  bufferpool::TieredRdmaBufferPool::Options po;
  po.lbp_capacity_pages = 256;
  po.node = 0;
  po.tenant = 0;
  auto pool = std::make_unique<bufferpool::TieredRdmaBufferPool>(
      po, dram.get(), &s.world_.remote, &s.world_.store);
  pool->SetWal(&s.world_.log);

  const uint64_t disk_reads_before = s.world_.disk.read_ops();
  RecoverAries(ctx, pool.get(), &s.world_.log, opt.costs);
  const uint64_t remote_hits = pool->remote_hits();
  EXPECT_GT(remote_hits, 0u);  // bases came over RDMA, not storage
  (void)disk_reads_before;

  auto db = Database::OpenWithPool(ctx, s.world_.Env(), opt,
                                   std::move(pool));
  ASSERT_TRUE(db.ok());
  s.ExpectMatchesReference(db->get());
}

// ---------- PolarRecv ----------

class PolarRecvTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> RecoverAfterCrash(CrashScenario& s,
                                              PolarRecvStats* stats_out) {
    const MemOffset region = s.Crash();
    ExecContext ctx;
    ctx.now = s.CrashTime();
    CxlBufferPool::Options po;
    po.capacity_pages = 256;
    po.tenant = 0;
    auto pool = CxlBufferPool::Attach(ctx, po, region, s.world_.acc,
                                      &s.world_.store);
    POLAR_CHECK(pool.ok());
    (*pool)->SetWal(&s.world_.log);
    auto stats =
        PolarRecv(ctx, pool->get(), &s.world_.log, sim::CpuCostModel{});
    if (stats_out != nullptr) *stats_out = stats;
    auto db = Database::OpenWithPool(
        ctx, s.world_.Env(), RestartOptions(BufferPoolKind::kCxl),
        std::move(*pool));
    POLAR_CHECK(db.ok());
    return std::move(*db);
  }
};

TEST_F(PolarRecvTest, CleanCrashReusesEverything) {
  CrashScenario s(BufferPoolKind::kCxl);
  // No injected hazards: all in-flight work was committed and flushed.
  PolarRecvStats stats;
  auto db = RecoverAfterCrash(s, &stats);
  EXPECT_EQ(stats.pages_repaired, 0u);
  EXPECT_FALSE(stats.lists_rebuilt);
  EXPECT_GT(stats.pages_in_use, 0u);
  s.ExpectMatchesReference(db.get());
}

TEST_F(PolarRecvTest, RepairsAllInjectedHazards) {
  CrashScenario s(BufferPoolKind::kCxl);
  s.InjectCxlHazards();
  PolarRecvStats stats;
  auto db = RecoverAfterCrash(s, &stats);
  EXPECT_GE(stats.locked_pages, 2u);
  EXPECT_GT(stats.too_new_pages, 0u);
  EXPECT_TRUE(stats.lists_rebuilt);
  EXPECT_GT(stats.records_applied, 0u);
  s.ExpectMatchesReference(db.get());
}

TEST_F(PolarRecvTest, BufferPoolIsWarmAfterRecovery) {
  CrashScenario s(BufferPoolKind::kCxl);
  s.InjectCxlHazards();
  auto db = RecoverAfterCrash(s, nullptr);
  // Reads after recovery hit the pool, not storage.
  ExecContext ctx;
  const uint64_t disk_reads_before = s.world_.disk.read_ops();
  for (uint64_t k = 100; k < 200; k++) {
    if (s.reference_.count(k) > 0) {
      auto got = db->table(size_t{0})->Get(ctx, k);
      ASSERT_TRUE(got.ok());
    }
  }
  EXPECT_EQ(s.world_.disk.read_ops(), disk_reads_before);
}

TEST_F(PolarRecvTest, UnflushedUpdatesAreRolledBack) {
  CrashScenario s(BufferPoolKind::kCxl);
  s.InjectCxlHazards();  // includes 'z' updates that never flushed
  auto db = RecoverAfterCrash(s, nullptr);
  ExecContext ctx;
  for (uint64_t k = 0; k < 20; k++) {
    if (s.reference_.count(k) > 0) {
      auto got = db->table(size_t{0})->Get(ctx, k);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, s.reference_[k]) << k;  // 'z' version gone
    }
  }
}

TEST_F(PolarRecvTest, MuchCheaperThanAriesOnSameCrash) {
  // Two identical scenarios; one recovered by each scheme.
  CrashScenario cxl_s(BufferPoolKind::kCxl);
  cxl_s.InjectCxlHazards();
  PolarRecvStats recv_stats;
  auto db = RecoverAfterCrash(cxl_s, &recv_stats);

  CrashScenario dram_s(BufferPoolKind::kDram);
  dram_s.Crash();
  ExecContext ctx;
  ctx.now = dram_s.CrashTime();
  sim::MemorySpace::Options mo;
  auto dram = std::make_unique<sim::MemorySpace>(mo);
  bufferpool::DramBufferPool::Options po;
  po.capacity_pages = 256;
  auto pool = std::make_unique<bufferpool::DramBufferPool>(
      po, dram.get(), &dram_s.world_.store);
  pool->SetWal(&dram_s.world_.log);
  auto aries_stats =
      RecoverAries(ctx, pool.get(), &dram_s.world_.log, sim::CpuCostModel{});

  EXPECT_LT(recv_stats.duration, aries_stats.duration / 2);
  EXPECT_LT(recv_stats.records_applied, aries_stats.records_applied);
}

// ---------- cross-scheme equivalence ----------

TEST(RecoveryEquivalenceTest, PolarRecvMatchesAriesByteForByte) {
  // Same logical history on two worlds; recover each with its scheme and
  // compare full table contents.
  CrashScenario cxl_s(BufferPoolKind::kCxl);
  cxl_s.InjectCxlHazards();
  const MemOffset region = cxl_s.Crash();
  ExecContext ctx;
  ctx.now = cxl_s.CrashTime();
  CxlBufferPool::Options po;
  po.capacity_pages = 256;
  po.tenant = 0;
  auto pool = CxlBufferPool::Attach(ctx, po, region, cxl_s.world_.acc,
                                    &cxl_s.world_.store);
  ASSERT_TRUE(pool.ok());
  (*pool)->SetWal(&cxl_s.world_.log);
  PolarRecv(ctx, pool->get(), &cxl_s.world_.log, sim::CpuCostModel{});
  auto cxl_db = Database::OpenWithPool(
      ctx, cxl_s.world_.Env(), RestartOptions(BufferPoolKind::kCxl),
      std::move(*pool));
  ASSERT_TRUE(cxl_db.ok());

  CrashScenario dram_s(BufferPoolKind::kDram);
  dram_s.Crash();
  ExecContext dctx;
  dctx.now = dram_s.CrashTime();
  sim::MemorySpace::Options mo;
  auto dram = std::make_unique<sim::MemorySpace>(mo);
  bufferpool::DramBufferPool::Options dpo;
  dpo.capacity_pages = 256;
  auto dpool = std::make_unique<bufferpool::DramBufferPool>(
      dpo, dram.get(), &dram_s.world_.store);
  dpool->SetWal(&dram_s.world_.log);
  RecoverAries(dctx, dpool.get(), &dram_s.world_.log, sim::CpuCostModel{});
  auto dram_db = Database::OpenWithPool(
      dctx, dram_s.world_.Env(), RestartOptions(BufferPoolKind::kDram),
      std::move(dpool));
  ASSERT_TRUE(dram_db.ok());

  std::vector<std::pair<uint64_t, std::string>> a;
  std::vector<std::pair<uint64_t, std::string>> b;
  ASSERT_TRUE((*cxl_db)->table(size_t{0})->Scan(ctx, 0, 1 << 20, &a).ok());
  ASSERT_TRUE((*dram_db)->table(size_t{0})->Scan(ctx, 0, 1 << 20, &b).ok());
  EXPECT_EQ(a, b);
}

// Parameterized: equivalence must hold across many random histories.
class RecoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryPropertyTest, RandomHistoryRecoversToCommittedState) {
  CrashScenario s(BufferPoolKind::kCxl);
  // Extra random committed churn, seed-dependent.
  Rng rng(GetParam());
  ExecContext& ctx = s.ctx_;
  for (int i = 0; i < 200; i++) {
    const uint64_t k = rng.Uniform(800);
    if (rng.Chance(0.5)) {
      if (s.reference_.count(k) == 0) {
        POLAR_CHECK(s.tree()->Insert(ctx, k, Row(k, 'd')).ok());
        s.reference_[k] = Row(k, 'd');
      }
    } else if (s.reference_.count(k) > 0) {
      POLAR_CHECK(s.tree()->Update(ctx, k, Row(k, 'e')).ok());
      s.reference_[k] = Row(k, 'e');
    }
  }
  s.db_->CommitTransaction(ctx);
  if (GetParam() % 2 == 0) s.db_->Checkpoint(ctx);
  s.InjectCxlHazards();

  const MemOffset region = s.Crash();
  ExecContext rctx;
  rctx.now = s.CrashTime();
  CxlBufferPool::Options po;
  po.capacity_pages = 256;
  po.tenant = 0;
  auto pool = CxlBufferPool::Attach(rctx, po, region, s.world_.acc,
                                    &s.world_.store);
  ASSERT_TRUE(pool.ok());
  (*pool)->SetWal(&s.world_.log);
  PolarRecv(rctx, pool->get(), &s.world_.log, sim::CpuCostModel{});
  auto db = Database::OpenWithPool(
      rctx, s.world_.Env(), RestartOptions(BufferPoolKind::kCxl),
      std::move(*pool));
  ASSERT_TRUE(db.ok());
  s.ExpectMatchesReference(db->get());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace polarcxl::recovery
