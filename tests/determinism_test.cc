// The entire simulation must be exactly reproducible: identical configs
// produce identical virtual-time results, across every experiment driver.
// (This is what makes regression comparisons between design variants
// meaningful — any drift is a real behavioural change, never noise.)
#include <gtest/gtest.h>

#include <vector>

#include "harness/instance_driver.h"
#include "harness/recovery_driver.h"
#include "harness/sharing_driver.h"
#include "harness/sweep_runner.h"

namespace polarcxl::harness {
namespace {

PoolingConfig SmallPooling(engine::BufferPoolKind kind) {
  PoolingConfig c;
  c.kind = kind;
  c.instances = 2;
  c.lanes_per_instance = 3;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(20);
  c.measure = Millis(60);
  return c;
}

TEST(DeterminismTest, PoolingRunsAreBitIdentical) {
  for (auto kind :
       {engine::BufferPoolKind::kDram, engine::BufferPoolKind::kCxl,
        engine::BufferPoolKind::kTieredRdma}) {
    PoolingResult a = RunPooling(SmallPooling(kind));
    PoolingResult b = RunPooling(SmallPooling(kind));
    EXPECT_EQ(a.metrics.queries, b.metrics.queries);
    EXPECT_EQ(a.metrics.events, b.metrics.events);
    EXPECT_EQ(a.metrics.latency.max(), b.metrics.latency.max());
    EXPECT_DOUBLE_EQ(a.interconnect_gbps, b.interconnect_gbps);
    EXPECT_EQ(a.line_misses, b.line_misses);
  }
}

TEST(DeterminismTest, SharingRunsAreBitIdentical) {
  for (auto mode : {SharingMode::kCxl, SharingMode::kRdma}) {
    SharingConfig c;
    c.mode = mode;
    c.nodes = 3;
    c.lanes_per_node = 2;
    c.sysbench.tables = 1;
    c.sysbench.rows_per_table = 1500;
    c.sysbench.num_nodes = 3;
    c.sysbench.shared_fraction = 0.5;
    c.warmup = Millis(20);
    c.measure = Millis(60);
    SharingResult a = RunSharing(c);
    SharingResult b = RunSharing(c);
    EXPECT_EQ(a.metrics.queries, b.metrics.queries);
    EXPECT_EQ(a.lock_waits, b.lock_waits);
    EXPECT_EQ(a.total_lock_wait, b.total_lock_wait);
    EXPECT_EQ(a.invalidations, b.invalidations);
  }
}

TEST(DeterminismTest, RecoveryTimelinesAreBitIdentical) {
  RecoveryConfig c;
  c.scheme = RecoveryScheme::kPolarRecv;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 3000;
  c.lanes = 4;
  c.crash_at = Millis(300);
  c.total = Millis(700);
  c.bucket = Millis(25);
  c.checkpoint_interval = Millis(150);
  c.process_restart = Millis(50);
  RecoveryResult a = RunRecoveryExperiment(c);
  RecoveryResult b = RunRecoveryExperiment(c);
  EXPECT_EQ(a.serving_at, b.serving_at);
  EXPECT_EQ(a.warmed_at, b.warmed_at);
  ASSERT_EQ(a.qps.num_buckets(), b.qps.num_buckets());
  for (size_t i = 0; i < a.qps.num_buckets(); i++) {
    EXPECT_EQ(a.qps.bucket(i), b.qps.bucket(i)) << i;
  }
  EXPECT_EQ(a.polar.records_applied, b.polar.records_applied);
}

TEST(DeterminismTest, SerialLoopMatchesParallelSweepAtAnyThreadCount) {
  // The parallel sweep runner must be pure wall-clock parallelism: per-
  // experiment metrics are bit-identical between a plain serial loop and
  // RunSweep at any thread count.
  std::vector<PoolingConfig> configs = {
      SmallPooling(engine::BufferPoolKind::kCxl),
      SmallPooling(engine::BufferPoolKind::kTieredRdma),
      SmallPooling(engine::BufferPoolKind::kDram),
  };
  configs.push_back(SmallPooling(engine::BufferPoolKind::kCxl));
  configs.back().seed = 99;

  std::vector<PoolingResult> serial;
  for (const PoolingConfig& c : configs) serial.push_back(RunPooling(c));

  for (unsigned threads : {2u, 4u, 8u}) {
    const auto swept = RunSweep<PoolingConfig, PoolingResult>(
        configs, [](const PoolingConfig& c) { return RunPooling(c); },
        threads);
    ASSERT_EQ(swept.size(), serial.size());
    for (size_t i = 0; i < serial.size(); i++) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads
                                        << " config=" << i);
      EXPECT_EQ(serial[i].metrics.queries, swept[i].metrics.queries);
      EXPECT_EQ(serial[i].metrics.events, swept[i].metrics.events);
      EXPECT_EQ(serial[i].metrics.latency.max(),
                swept[i].metrics.latency.max());
      EXPECT_EQ(serial[i].line_hits, swept[i].line_hits);
      EXPECT_EQ(serial[i].line_misses, swept[i].line_misses);
      EXPECT_EQ(serial[i].lane_steps, swept[i].lane_steps);
      EXPECT_EQ(serial[i].virtual_end, swept[i].virtual_end);
      EXPECT_EQ(serial[i].breakdown.total, swept[i].breakdown.total);
      EXPECT_DOUBLE_EQ(serial[i].interconnect_gbps,
                       swept[i].interconnect_gbps);
    }
  }
}

TEST(DeterminismTest, Fig7QuickScaleLaneStepsArePinned) {
  // Pins the exact lane_steps of the bench_sim_throughput workload at quick
  // scale (the POLAR_BENCH_SCALE=0.1 windows: 4 ms warmup, 12 ms measure).
  // lane_steps is pure virtual-time output — host speed cannot move it, so
  // any drift here is a semantic change to the simulation (RNG draw order,
  // latency arithmetic, cache state machine, eviction order, ...). Such a
  // change may be intentional, but it must never be an accident: update
  // these constants (and tools/check.sh) only alongside an explanation of
  // what changed the simulated execution.
  PoolingConfig cxl = Fig7PoolingConfig(engine::BufferPoolKind::kCxl);
  cxl.warmup = Millis(4);
  cxl.measure = Millis(12);
  EXPECT_EQ(RunPooling(cxl).lane_steps, 22105u);

  PoolingConfig rdma = Fig7PoolingConfig(engine::BufferPoolKind::kTieredRdma);
  rdma.warmup = Millis(4);
  rdma.measure = Millis(12);
  EXPECT_EQ(RunPooling(rdma).lane_steps, 17460u);
}

TEST(DeterminismTest, SeedChangesResultsButNotValidity) {
  PoolingConfig c = SmallPooling(engine::BufferPoolKind::kCxl);
  PoolingResult a = RunPooling(c);
  c.seed = 777;
  PoolingResult b = RunPooling(c);
  // Different key streams, same regime: the run stays valid and lands
  // within a few percent (counts may coincide for uniform workloads whose
  // per-event costs are key-independent).
  EXPECT_GT(b.metrics.Qps(), 0.0);
  EXPECT_NEAR(a.metrics.Qps() / b.metrics.Qps(), 1.0, 0.05);
}

}  // namespace
}  // namespace polarcxl::harness
