// Tests for src/common: Status/Result, Slice, Rng/ZipfRng, Histogram,
// TimeSeries, FastDiv64, Arena, PageMap.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/arena.h"
#include "common/fastdiv.h"
#include "common/flat_map.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace polarcxl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: page 7");

  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfMemory().IsOutOfMemory());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Busy("later"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBusy());
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice().empty());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; i++) hits += rng.Chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(ZipfTest, SkewsTowardsSmallValues) {
  ZipfRng zipf(3, 1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; i++) counts[zipf.Next()]++;
  // Head must be much hotter than the tail.
  EXPECT_GT(counts[0], counts[500] * 10);
  // All draws in range (counts vector indexing above would have aborted).
}

TEST(ZipfTest, CoversRange) {
  ZipfRng zipf(5, 10, 0.5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; i++) seen.insert(zipf.Next());
  EXPECT_GE(seen.size(), 9u);
  for (uint64_t v : seen) EXPECT_LT(v, 10u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Add(i * 1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_NEAR(h.Mean(), 50500.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 2500.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000.0, 4000.0);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a;
  Histogram b;
  Histogram all;
  Rng rng(1);
  for (int i = 0; i < 5000; i++) {
    const Nanos v = static_cast<Nanos>(rng.Uniform(1000000));
    if (i % 2 == 0) a.Add(v);
    else b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.Percentile(99), all.Percentile(99));
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  for (int i = 0; i < 100000; i++) h.Add(123456);
  // All mass in one bucket: percentiles must be within bucket width (~2%).
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 123456, 123456 * 0.02);
  EXPECT_EQ(h.Percentile(100), 123456);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(TimeSeriesTest, BucketsAndRates) {
  TimeSeries ts(kNanosPerSec);
  ts.Add(Secs(0.5));
  ts.Add(Secs(0.7));
  ts.Add(Secs(2.1));
  EXPECT_EQ(ts.bucket(0), 2u);
  EXPECT_EQ(ts.bucket(1), 0u);
  EXPECT_EQ(ts.bucket(2), 1u);
  EXPECT_DOUBLE_EQ(ts.RatePerSec(0), 2.0);
  EXPECT_EQ(ts.num_buckets(), 3u);
  EXPECT_EQ(ts.bucket(99), 0u);  // out of range reads as zero
}

TEST(TypesTest, DurationHelpers) {
  EXPECT_EQ(Micros(1.5), 1500);
  EXPECT_EQ(Millis(2), 2000000);
  EXPECT_EQ(Secs(1), kNanosPerSec);
  EXPECT_EQ(kLinesPerPage, 256u);
}


TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(100), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  EXPECT_DOUBLE_EQ(h.Mean(), 12345.0);
  // Percentiles interpolate within the log bucket (< 2% relative error)
  // and cap at the recorded max.
  EXPECT_GE(h.Percentile(50), 12345 * 98 / 100);
  EXPECT_LE(h.Percentile(50), 12345);
  EXPECT_EQ(h.Percentile(100), 12345);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-5);
  h.Add(-1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SmallValuesBucketExactly) {
  // For v < 128 the bucket is the value itself, so percentiles over a small
  // range are exact (not just within log-bucket relative error).
  Histogram h;
  for (Nanos v = 0; v < 128; v++) h.Add(v);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 127);
  const Nanos p50 = h.Percentile(50);
  EXPECT_GE(p50, 63);
  EXPECT_LE(p50, 65);
}

TEST(HistogramTest, MergeDisjointRanges) {
  Histogram lo;
  Histogram hi;
  for (int i = 0; i < 1000; i++) lo.Add(100 + i % 10);
  for (int i = 0; i < 1000; i++) hi.Add(1000000 + i % 10);
  lo.Merge(hi);
  EXPECT_EQ(lo.count(), 2000u);
  EXPECT_EQ(lo.min(), 100);
  EXPECT_EQ(lo.max(), 1000009);
  // Half the mass is near 100, half near 1e6.
  EXPECT_LT(lo.Percentile(25), 200);
  EXPECT_GT(lo.Percentile(75), 900000);
  // Merging an empty histogram changes nothing.
  Histogram empty;
  const Nanos before = lo.Percentile(50);
  lo.Merge(empty);
  EXPECT_EQ(lo.count(), 2000u);
  EXPECT_EQ(lo.Percentile(50), before);
}

TEST(TimeSeriesTest, NegativeTimestampsLandInFirstBucket) {
  TimeSeries ts(1000);
  ts.Add(-50);
  ts.Add(-1, 3);
  EXPECT_EQ(ts.num_buckets(), 1u);
  EXPECT_EQ(ts.bucket(0), 4u);
}

TEST(TimeSeriesTest, HugeTimestampSaturatesIntoLastBucket) {
  TimeSeries ts(1);
  // Would previously try to resize to ~9e18 buckets and die; now saturates.
  ts.Add(Nanos{1} << 62);
  ts.Add(Nanos{1} << 62, 2);
  EXPECT_EQ(ts.num_buckets(), TimeSeries::kMaxBuckets);
  EXPECT_EQ(ts.bucket(TimeSeries::kMaxBuckets - 1), 3u);
  // Normal adds still work after saturation.
  ts.Add(5);
  EXPECT_EQ(ts.bucket(5), 1u);
}

TEST(FastDivTest, MatchesHardwareDivisionExhaustiveDivisors) {
  // Every divisor shape: 1, powers of two, odd, even non-power-of-two, and
  // the add-fixup path (magic needing 65 bits, e.g. 7, 14, 19, ...).
  std::vector<uint64_t> divisors = {1, 2, 3, 4, 5, 6, 7, 10, 19, 25, 100,
                                    127, 128, 641, 25000, 1u << 20};
  divisors.push_back(0xFFFFFFFFFFFFFFFFull);
  divisors.push_back(0x8000000000000000ull);
  Rng rng(42);
  for (uint64_t d : divisors) {
    FastDiv64 fd(d);
    // Edge dividends plus random ones.
    std::vector<uint64_t> xs = {0, 1, d - 1, d, d + 1, 2 * d,
                                0xFFFFFFFFFFFFFFFFull};
    for (int i = 0; i < 1000; i++) xs.push_back(rng.Next());
    for (uint64_t x : xs) {
      ASSERT_EQ(fd.Div(x), x / d) << "d=" << d << " x=" << x;
      ASSERT_EQ(fd.Mod(x), x % d) << "d=" << d << " x=" << x;
    }
  }
}

TEST(FastDivTest, ModMatchesRngUniformDrawForDraw) {
  // The workload generators replace rng.Uniform(n) (== Next() % n) with
  // fd.Mod(rng.Next()); the sequences must be bit-identical.
  for (uint64_t n : {3u, 10u, 26u, 120u, 25000u}) {
    Rng a(7);
    Rng b(7);
    FastDiv64 fd(n);
    for (int i = 0; i < 200; i++) {
      ASSERT_EQ(a.Uniform(n), fd.Mod(b.Next()));
    }
  }
}

TEST(ArenaTest, AllocAlignAndReset) {
  Arena arena(64);  // tiny first chunk to force growth
  void* p1 = arena.Alloc(10, 8);
  void* p2 = arena.Alloc(100, 16);
  void* p3 = arena.Alloc(1000, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p3) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 1110u);
  EXPECT_GT(arena.num_chunks(), 1u);
  arena.Reset();
  // Reset keeps only the newest (largest) chunk and rewinds it.
  EXPECT_EQ(arena.num_chunks(), 1u);
  // A warmed arena satisfies the same demand without growing again.
  arena.Alloc(1000, 64);
  EXPECT_EQ(arena.num_chunks(), 1u);
}

TEST(ArenaTest, NewConstructsInPlace) {
  struct Point {
    int x;
    int y;
  };
  Arena arena;
  Point* p = arena.New<Point>(Point{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
  int* xs = arena.AllocArray<int>(100);
  for (int i = 0; i < 100; i++) xs[i] = i;
  EXPECT_EQ(xs[99], 99);
}

TEST(PageMapTest, PutFindErase) {
  PageMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), PageMap::kNotFound);
  map.Put(42, 7);
  EXPECT_EQ(map.Find(42), 7u);
  map.Put(42, 8);  // overwrite
  EXPECT_EQ(map.Find(42), 8u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.Erase(42));
  EXPECT_FALSE(map.Erase(42));
  EXPECT_EQ(map.Find(42), PageMap::kNotFound);
  EXPECT_TRUE(map.empty());
}

TEST(PageMapTest, GrowsAndMatchesReference) {
  PageMap map(4);
  std::set<PageId> reference;
  Rng rng(99);
  for (int i = 0; i < 20000; i++) {
    const PageId key = static_cast<PageId>(rng.Uniform(5000));
    if (rng.Chance(0.6)) {
      map.Put(key, key * 2);
      reference.insert(key);
    } else {
      EXPECT_EQ(map.Erase(key), reference.erase(key) > 0);
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  for (PageId k = 0; k < 5000; k++) {
    if (reference.count(k) > 0) {
      EXPECT_EQ(map.Find(k), k * 2);
    } else {
      EXPECT_EQ(map.Find(k), PageMap::kNotFound);
    }
  }
}

TEST(PageMapTest, TombstoneReuseKeepsLookupCorrect) {
  // Hammer one small key set with put/erase cycles: tombstone slots must be
  // reused and rehashing must purge them without losing live entries.
  PageMap map(4);
  for (int round = 0; round < 1000; round++) {
    for (PageId k = 0; k < 8; k++) map.Put(k, round);
    for (PageId k = 0; k < 8; k += 2) map.Erase(k);
  }
  for (PageId k = 0; k < 8; k++) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.Find(k), PageMap::kNotFound);
    } else {
      EXPECT_EQ(map.Find(k), 999u);
    }
  }
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), PageMap::kNotFound);
}

}  // namespace
}  // namespace polarcxl
