// Tests for src/common: Status/Result, Slice, Rng/ZipfRng, Histogram,
// TimeSeries.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace polarcxl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: page 7");

  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfMemory().IsOutOfMemory());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Busy("later"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBusy());
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice().empty());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; i++) hits += rng.Chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(ZipfTest, SkewsTowardsSmallValues) {
  ZipfRng zipf(3, 1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; i++) counts[zipf.Next()]++;
  // Head must be much hotter than the tail.
  EXPECT_GT(counts[0], counts[500] * 10);
  // All draws in range (counts vector indexing above would have aborted).
}

TEST(ZipfTest, CoversRange) {
  ZipfRng zipf(5, 10, 0.5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; i++) seen.insert(zipf.Next());
  EXPECT_GE(seen.size(), 9u);
  for (uint64_t v : seen) EXPECT_LT(v, 10u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Add(i * 1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_NEAR(h.Mean(), 50500.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 2500.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000.0, 4000.0);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a;
  Histogram b;
  Histogram all;
  Rng rng(1);
  for (int i = 0; i < 5000; i++) {
    const Nanos v = static_cast<Nanos>(rng.Uniform(1000000));
    if (i % 2 == 0) a.Add(v);
    else b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.Percentile(99), all.Percentile(99));
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  for (int i = 0; i < 100000; i++) h.Add(123456);
  // All mass in one bucket: percentiles must be within bucket width (~2%).
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 123456, 123456 * 0.02);
  EXPECT_EQ(h.Percentile(100), 123456);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(TimeSeriesTest, BucketsAndRates) {
  TimeSeries ts(kNanosPerSec);
  ts.Add(Secs(0.5));
  ts.Add(Secs(0.7));
  ts.Add(Secs(2.1));
  EXPECT_EQ(ts.bucket(0), 2u);
  EXPECT_EQ(ts.bucket(1), 0u);
  EXPECT_EQ(ts.bucket(2), 1u);
  EXPECT_DOUBLE_EQ(ts.RatePerSec(0), 2.0);
  EXPECT_EQ(ts.num_buckets(), 3u);
  EXPECT_EQ(ts.bucket(99), 0u);  // out of range reads as zero
}

TEST(TypesTest, DurationHelpers) {
  EXPECT_EQ(Micros(1.5), 1500);
  EXPECT_EQ(Millis(2), 2000000);
  EXPECT_EQ(Secs(1), kNanosPerSec);
  EXPECT_EQ(kLinesPerPage, 256u);
}

}  // namespace
}  // namespace polarcxl
