// Tests for the virtual-time simulation core: bandwidth channels, CPU cache
// simulator, memory spaces, lock table, executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/bandwidth_channel.h"
#include "sim/cpu_cache.h"
#include "sim/executor.h"
#include "sim/latency_model.h"
#include "sim/lock_table.h"
#include "sim/memory_space.h"

namespace polarcxl::sim {
namespace {

// ---------- BandwidthChannel ----------

TEST(BandwidthChannelTest, UnsaturatedTransfersDoNotQueue) {
  BandwidthChannel ch("nic", 1000000000);  // 1 GB/s => 1 byte/ns
  EXPECT_EQ(ch.Transfer(0, 1000), 1000);
  // A later transfer with window budget left completes (nearly) instantly:
  // small-transfer service time lives in the latency models, the channel
  // only accounts capacity.
  const Nanos done = ch.Transfer(5000, 1000);
  EXPECT_GE(done, 5001);
  EXPECT_LE(done, 6000);
}

TEST(BandwidthChannelTest, SaturatedTransfersQueueFifo) {
  BandwidthChannel ch("nic", 1000000000);
  EXPECT_EQ(ch.Transfer(0, 1000), 1000);
  EXPECT_EQ(ch.Transfer(0, 1000), 2000);  // queued behind the first
  EXPECT_EQ(ch.Transfer(500, 1000), 3000);
}

TEST(BandwidthChannelTest, InfiniteBandwidthNeverQueues) {
  BandwidthChannel ch("inf", 0);
  EXPECT_EQ(ch.Transfer(42, 1 << 30), 42);
}

TEST(BandwidthChannelTest, StatsAccumulate) {
  BandwidthChannel ch("nic", 2000000000);
  ch.Transfer(0, 4000);
  ch.Transfer(0, 4000);
  EXPECT_EQ(ch.total_bytes(), 8000u);
  EXPECT_EQ(ch.total_transfers(), 2u);
  EXPECT_EQ(ch.busy_time(), 4000);  // 8000 B at 2 B/ns
  EXPECT_NEAR(ch.Utilization(8000), 0.5, 1e-9);
  EXPECT_NEAR(ch.DeliveredRate(4000), 2e9, 1e3);
  ch.ResetStats();
  EXPECT_EQ(ch.total_bytes(), 0u);
}

TEST(BandwidthChannelTest, DeliveredRateIsCappedUnderOverload) {
  BandwidthChannel ch("nic", 1000000000);
  // Offer 1 GB at t=0; delivery takes ~1 s.
  for (int i = 0; i < 100; i++) ch.Transfer(0, 10 * 1000 * 1000);
  EXPECT_NEAR(ch.DeliveredRate(ch.busy_until()), 1e9, 1e7);
}

TEST(BandwidthChannelTest, MinimumOneNanosecond) {
  BandwidthChannel ch("fast", 64ULL * 1000 * 1000 * 1000);
  const Nanos done = ch.Transfer(0, 1);
  EXPECT_GE(done, 1);
}

TEST(BandwidthChannelTest, OutOfOrderPostingKeepsPerWindowAccounting) {
  // 1 GB/s, default 10 us windows => 10 KB budget per window. A transfer
  // posted at an *earlier* virtual time than one already accepted must not
  // be pushed behind it: its own window still has budget.
  BandwidthChannel ch("nic", 1000000000);
  const Nanos late = ch.Transfer(50'000, 5000);   // window 5
  EXPECT_EQ(late, 55'000);
  const Nanos early = ch.Transfer(12'000, 5000);  // window 1, posted after
  EXPECT_EQ(early, 15'000);  // window 1's budget, unaffected by window 5
  // Window 1 now holds 5000/10000: a second early transfer fills it.
  EXPECT_EQ(ch.Transfer(12'000, 5000), 20'000);
  // And a third spills into window 2.
  EXPECT_EQ(ch.Transfer(12'000, 5000), 25'000);
}

TEST(BandwidthChannelTest, ZeroRateChannelNeverQueuesAndKeepsNoLedger) {
  BandwidthChannel ch("inf", 0);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(ch.Transfer(i * 100, 1 << 20), i * 100);
  }
  EXPECT_EQ(ch.window_footprint(), 0u);  // rate 0 = infinite: no ledger
  EXPECT_EQ(ch.busy_time(), 0);
}

TEST(BandwidthChannelTest, WindowBoundarySpill) {
  // 1 GB/s, 10 KB/window. A transfer larger than the remaining budget of
  // its window spills into the next; completion lands where the last byte
  // lands, in the later window.
  BandwidthChannel ch("nic", 1000000000);
  EXPECT_EQ(ch.Transfer(0, 10'000), 10'000);   // fills window 0 exactly
  EXPECT_EQ(ch.Transfer(0, 15'000), 25'000);   // spills through window 1
  // Window 2 has 5000 used; the next 5000 completes window 2's budget.
  EXPECT_EQ(ch.Transfer(20'000, 5000), 30'000);
}

TEST(BandwidthChannelTest, PeekCompletionMatchesSubsequentTransfer) {
  BandwidthChannel ch("nic", 1000000000);
  ch.Transfer(0, 7000);
  const std::pair<Nanos, uint64_t> probes[] = {
      {0, 4000}, {3'000, 12'000}, {28'000, 1}, {28'000, 25'000}};
  for (const auto& [now, bytes] : probes) {
    const Nanos peek = ch.PeekCompletion(now, bytes);
    EXPECT_EQ(peek, ch.Transfer(now, bytes)) << now << "/" << bytes;
  }
}

TEST(BandwidthChannelTest, FootprintStaysBoundedUnderSaturation) {
  // Sustained saturated traffic must not grow the ledger: fully-consumed
  // front windows are pruned as they fill (the old map ledger kept every
  // window ever touched).
  BandwidthChannel ch("nic", 1000000000);
  size_t max_footprint = 0;
  Nanos now = 0;
  for (int i = 0; i < 50'000; i++) {
    now = ch.Transfer(now, 10'000);  // one full window per transfer
    max_footprint = std::max(max_footprint, ch.window_footprint());
  }
  EXPECT_LE(max_footprint, 64u);
  // ~500 ms of virtual time crossed ~50k windows; the ring held only the
  // active frontier.
  EXPECT_GT(now, Nanos{400'000'000});
}

TEST(BandwidthChannelTest, IdleGapSlideChargesNothing) {
  // 1 GB/s, 10 KB / 10 us windows. A long idle gap between posts must be
  // skipped arithmetically — the lazy extension never iterates (or
  // charges for) the untouched windows in between.
  BandwidthChannel ch("nic", 1000000000);
  ch.Transfer(0, 1000);
  const uint64_t before = ch.window_advances();
  // 1 full second later: 100'000 windows of idle gap.
  ch.Transfer(1'000'000'000, 1000);
  EXPECT_LE(ch.window_advances() - before, 2u);
}

TEST(BandwidthChannelTest, BatchedSpillChargesOnce) {
  // A transfer spanning ~1000 windows from a clean frontier commits as
  // one arithmetic batch (FastDiv64), not a per-window walk.
  BandwidthChannel ch("nic", 1000000000);
  const Nanos done = ch.Transfer(0, 10'000'000);  // 1000 windows' budget
  EXPECT_EQ(done, 10'000'000);
  EXPECT_LE(ch.window_advances(), 2u);
  // The peek path takes the same O(1) branch and must agree with commit.
  BandwidthChannel ch2("nic2", 1000000000);
  EXPECT_EQ(ch2.PeekCompletion(0, 10'000'000), done);
  EXPECT_EQ(ch2.Transfer(0, 10'000'000), done);
}

TEST(BandwidthChannelTest, RetirementBoundsSparseLedgerFootprint) {
  // Sparse periodic traffic (one partial window every 50 windows) leaves
  // part-used windows behind that pruning alone never drops. With the
  // watermark armed, the ledger retires everything `lag` windows behind
  // the posting frontier and the footprint stays O(lag), while an
  // unarmed twin fed the same schedule keeps identical completions —
  // in-order traffic never looks behind the watermark, so forfeiting
  // the stale budget is unobservable.
  BandwidthChannel armed("a", 1000000000);
  BandwidthChannel unarmed("u", 1000000000);
  armed.set_retire_lag(4);
  size_t max_armed = 0, max_unarmed = 0;
  for (int i = 0; i < 2000; i++) {
    const Nanos now = static_cast<Nanos>(i) * 500'000;  // every 50 windows
    EXPECT_EQ(armed.Transfer(now, 1000), unarmed.Transfer(now, 1000));
    max_armed = std::max(max_armed, armed.window_footprint());
    max_unarmed = std::max(max_unarmed, unarmed.window_footprint());
  }
  EXPECT_LE(max_armed, 8u);
  EXPECT_GT(max_unarmed, 1000u);  // the unarmed span keeps every gap
  // The watermark tracked the posting frontier minus the lag.
  EXPECT_GE(armed.retired_end_window(), 1999 * 50 - 4);
  EXPECT_EQ(unarmed.retired_end_window(), 0);
}

TEST(BandwidthChannelTest, RetirementSurvivesCaptureRestore) {
  BandwidthChannel ch("nic", 1000000000);
  ch.set_retire_lag(4);
  ch.Transfer(1'000'000, 1000);
  const auto snap = ch.Capture();
  const int64_t retired = ch.retired_end_window();
  EXPECT_GT(retired, 0);
  ch.Transfer(2'000'000, 1000);
  ch.Restore(snap);
  EXPECT_EQ(ch.retired_end_window(), retired);
  // Replaying the post-snapshot traffic gives the same completion.
  EXPECT_EQ(ch.Transfer(2'000'000, 1000), 2'000'000 + 1000);
}

TEST(BandwidthChannelDeathTest, PostingBehindWatermarkTrips) {
  // Out-of-order posts below the watermark would read windows whose
  // budget was forfeited; the ledger refuses instead of answering wrong.
  BandwidthChannel ch("nic", 1000000000);
  ch.set_retire_lag(2);
  ch.Transfer(10'000'000, 1000);  // frontier at window 1000, retire to 998
  EXPECT_DEATH(ch.Transfer(0, 1000), "POLAR_CHECK");
}

// ---------- CpuCacheSim ----------

TEST(CpuCacheTest, MissThenHit) {
  CpuCacheSim cache(1 << 20);
  auto r1 = cache.Access(0x1000, false, nullptr);
  EXPECT_FALSE(r1.hit);
  auto r2 = cache.Access(0x1000, false, nullptr);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CpuCacheTest, SameLineSharedByNearbyBytes) {
  CpuCacheSim cache(1 << 20);
  cache.Access(0x1000, false, nullptr);
  EXPECT_TRUE(cache.Contains(0x1000 + 63));
  EXPECT_FALSE(cache.Contains(0x1000 + 64));
}

TEST(CpuCacheTest, DirtyEvictionReported) {
  // Tiny cache: 1 set x 2 ways.
  CpuCacheSim cache(128, 2);
  // Fill both ways with writes, then force an eviction.
  cache.Access(0 * 64, true, nullptr);
  cache.Access(1 * 64, true, nullptr);
  // Some subsequent distinct line must evict one of the dirty ones.
  bool saw_dirty_eviction = false;
  for (uint64_t i = 2; i < 10; i++) {
    auto r = cache.Access(i * 64, false, nullptr);
    saw_dirty_eviction |= r.evicted_dirty;
  }
  EXPECT_TRUE(saw_dirty_eviction);
}

TEST(CpuCacheTest, LruPrefersOldest) {
  CpuCacheSim cache(128, 2);  // 1 set, 2 ways
  cache.Access(0, false, nullptr);
  cache.Access(64, false, nullptr);
  cache.Access(0, false, nullptr);    // refresh line 0
  cache.Access(128, false, nullptr);  // must evict line 64
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(64));
  EXPECT_TRUE(cache.Contains(128));
}

TEST(CpuCacheTest, FlushRangeCountsDirtyAndClean) {
  CpuCacheSim cache(1 << 20);
  // Page at 0x10000: write 3 lines, read 2 lines.
  cache.Access(0x10000 + 0 * 64, true, nullptr);
  cache.Access(0x10000 + 1 * 64, true, nullptr);
  cache.Access(0x10000 + 2 * 64, true, nullptr);
  cache.Access(0x10000 + 3 * 64, false, nullptr);
  cache.Access(0x10000 + 4 * 64, false, nullptr);
  uint32_t dirty = 0;
  uint32_t clean = 0;
  cache.FlushRange(0x10000, 16 * 1024, &dirty, &clean);
  EXPECT_EQ(dirty, 3u);
  EXPECT_EQ(clean, 2u);
  EXPECT_FALSE(cache.Contains(0x10000));
}

TEST(CpuCacheTest, InvalidateAllEmptiesCache) {
  CpuCacheSim cache(1 << 20);
  for (uint64_t i = 0; i < 100; i++) cache.Access(i * 64, true, nullptr);
  cache.InvalidateAll();
  for (uint64_t i = 0; i < 100; i++) EXPECT_FALSE(cache.Contains(i * 64));
}

TEST(CpuCacheTest, CapacityRespected) {
  CpuCacheSim cache(64 * 1024, 16);
  EXPECT_EQ(cache.capacity_bytes(), 64u * 1024);
  // Stream far more lines than capacity; hits must stay low on 2nd pass of
  // a working set 4x the capacity.
  const uint64_t lines = 4 * 1024;
  for (uint64_t pass = 0; pass < 2; pass++) {
    for (uint64_t i = 0; i < lines; i++) cache.Access(i * 64, false, nullptr);
  }
  EXPECT_LT(static_cast<double>(cache.hits()) /
                static_cast<double>(cache.hits() + cache.misses()),
            0.35);
}

TEST(CpuCacheTest, CapacityRoundsDownToPowerOfTwoSets) {
  // 100000 B / (4 ways * 64 B lines) = 390 sets, rounded down to 256 so
  // set indexing stays a mask; capacity_bytes() reports the effective size.
  CpuCacheSim cache(100'000, 4);
  EXPECT_EQ(cache.num_sets(), 256u);
  EXPECT_EQ(cache.num_sets() & (cache.num_sets() - 1), 0u);
  EXPECT_EQ(cache.capacity_bytes(), 256u * 4 * 64);
  CpuCacheSim exact(1 << 20, 16);
  EXPECT_EQ(exact.capacity_bytes(), 1u << 20);
}

TEST(CpuCacheTest, RecentLineMemoInvalidatedWithTheCache) {
  // The recent-line memo must never manufacture hits for lines the cache
  // dropped: after a flush the memo's slot tag is zeroed, so the re-check
  // fails and the access takes the regular (miss) path.
  CpuCacheSim cache(1 << 20);
  EXPECT_FALSE(cache.Access(0x2000, true, nullptr).hit);
  EXPECT_TRUE(cache.Access(0x2000, false, nullptr).hit);  // memo hit path
  cache.InvalidateAll();
  EXPECT_FALSE(cache.Access(0x2000, false, nullptr).hit);
  EXPECT_TRUE(cache.Access(0x2000, false, nullptr).hit);

  cache.Access(0x2000, true, nullptr);  // re-dirty
  uint32_t dirty = 0;
  uint32_t clean = 0;
  cache.FlushRange(0x2000, 64, &dirty, &clean);
  EXPECT_EQ(dirty, 1u);
  EXPECT_FALSE(cache.Access(0x2000, false, nullptr).hit);
}

// ---------- MemorySpace ----------

MemorySpace::Options DramOptions() {
  MemorySpace::Options o;
  o.name = "dram";
  o.line_latency = 146;
  return o;
}

TEST(MemorySpaceTest, UncachedTouchPaysLineLatency) {
  MemorySpace mem(DramOptions());
  ExecContext ctx;  // no cache: every access misses
  mem.Touch(ctx, 0, 64, false);
  EXPECT_EQ(ctx.now, 146);
}

TEST(MemorySpaceTest, MultiLineTouchPipelines) {
  MemorySpace mem(DramOptions());
  ExecContext ctx;
  mem.Touch(ctx, 0, 256, false);  // 4 lines
  // First line full latency; remaining 3 at the streaming slope (4 ns).
  EXPECT_EQ(ctx.now, 146 + 3 * 4);
}

TEST(MemorySpaceTest, CacheHitsAreCheap) {
  MemorySpace mem(DramOptions());
  CpuCacheSim cache(1 << 20);
  ExecContext ctx;
  ctx.cache = &cache;
  mem.Touch(ctx, 0, 64, false);
  const Nanos after_miss = ctx.now;
  mem.Touch(ctx, 0, 64, false);
  EXPECT_EQ(ctx.now - after_miss, 4);  // cache hit cost
}

TEST(MemorySpaceTest, SaturatedLinkQueues) {
  BandwidthChannel link("lnk", 64);  // 64 B/s: absurdly slow
  MemorySpace::Options o = DramOptions();
  o.link = &link;
  MemorySpace mem(o);
  ExecContext ctx;
  mem.Touch(ctx, 0, 64, false);
  // One line takes a full virtual second on the link.
  EXPECT_GE(ctx.now, kNanosPerSec / 2);
}

TEST(MemorySpaceTest, StreamUsesStreamCostAndChannel) {
  BandwidthChannel link("lnk", 16ULL * 1000 * 1000 * 1000);  // 16 B/ns
  MemorySpace::Options o = DramOptions();
  o.link = &link;
  o.stream_read = {100, 4.0};
  MemorySpace mem(o);
  ExecContext ctx;
  mem.Stream(ctx, 0, kPageSize, false);
  // Service cost: 100 + 255*4 = 1120; channel time 16384/16 = 1024.
  EXPECT_EQ(ctx.now, 1120);
  EXPECT_EQ(link.total_bytes(), kPageSize);
}

TEST(MemorySpaceTest, FlushWritesBackOnlyDirtyLines) {
  BandwidthChannel link("lnk", 1000000000);
  MemorySpace::Options o = DramOptions();
  o.link = &link;
  o.clflush_line = 120;
  MemorySpace mem(o);
  CpuCacheSim cache(1 << 20);
  ExecContext ctx;
  ctx.cache = &cache;
  mem.Touch(ctx, 0, 128, true);    // 2 dirty lines
  mem.Touch(ctx, 4096, 64, false); // 1 clean line
  link.ResetStats();
  ctx.now = 1000000;
  const uint32_t flushed = mem.Flush(ctx, 0, kPageSize);
  EXPECT_EQ(flushed, 2u);
  EXPECT_EQ(link.total_bytes(), 128u);  // only dirty lines hit the wire
}

TEST(MemorySpaceTest, DemandBytesTrackTraffic) {
  MemorySpace mem(DramOptions());
  ExecContext ctx;
  mem.Touch(ctx, 0, 64, false);
  mem.Stream(ctx, 0, 1024, true);
  EXPECT_EQ(mem.demand_bytes(), 64u + 1024u);
}

// ---------- VirtualLockTable ----------

TEST(LockTableTest, UncontendedExclusiveGrantsImmediately) {
  VirtualLockTable t;
  EXPECT_EQ(t.AcquireExclusive(1, 100), 100);
  t.ReleaseExclusive(1, 200);
  EXPECT_EQ(t.AcquireExclusive(1, 300), 300);
}

TEST(LockTableTest, ExclusiveConflictQueues) {
  VirtualLockTable t;
  EXPECT_EQ(t.AcquireExclusive(1, 100), 100);
  t.ReleaseExclusive(1, 500);
  EXPECT_EQ(t.AcquireExclusive(1, 200), 500);
  t.ReleaseExclusive(1, 700);
  EXPECT_EQ(t.AcquireExclusive(1, 600), 700);
}

TEST(LockTableTest, ReadersOverlapButExcludeWriters) {
  VirtualLockTable t;
  EXPECT_EQ(t.AcquireShared(1, 100), 100);
  t.ReleaseShared(1, 400);
  EXPECT_EQ(t.AcquireShared(1, 150), 150);  // readers overlap
  t.ReleaseShared(1, 300);
  EXPECT_EQ(t.AcquireExclusive(1, 200), 400);  // writer waits for readers
  t.ReleaseExclusive(1, 600);
  EXPECT_EQ(t.AcquireShared(1, 500), 600);  // reader waits for writer
}

TEST(LockTableTest, IndependentKeysDoNotInteract) {
  VirtualLockTable t;
  t.AcquireExclusive(1, 100);
  t.ReleaseExclusive(1, 900);
  EXPECT_EQ(t.AcquireExclusive(2, 200), 200);
}

TEST(LockTableTest, WaitStatsAccumulate) {
  VirtualLockTable t;
  t.AcquireExclusive(1, 100);
  t.ReleaseExclusive(1, 500);
  t.AcquireExclusive(1, 200);
  EXPECT_EQ(t.total_wait(), 300);
  EXPECT_EQ(t.contended_acquisitions(), 1u);
  EXPECT_EQ(t.acquisitions(), 2u);
}

// ---------- Executor ----------

TEST(ExecutorTest, StepsLanesInClockOrder) {
  Executor ex;
  std::vector<int> order;
  ex.AddLane(
      [&](ExecContext& ctx) {
        order.push_back(1);
        ctx.Advance(100);
        return order.size() < 10;
      },
      0, nullptr, 0);
  ex.AddLane(
      [&](ExecContext& ctx) {
        order.push_back(2);
        ctx.Advance(250);
        return order.size() < 10;
      },
      0, nullptr, 0);
  ex.RunToCompletion();
  // Lane 1 advances 100/step, lane 2 250/step: pattern ~ 1,2,1,1,2,1,1,(2|1)...
  ASSERT_GE(order.size(), 6u);
  EXPECT_EQ(order[0], 1);  // tie at 0 broken by id
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 1);
  EXPECT_EQ(order[4], 2);
}

TEST(ExecutorTest, RunUntilStopsBeforeBoundary) {
  Executor ex;
  int steps = 0;
  ex.AddLane(
      [&](ExecContext& ctx) {
        steps++;
        ctx.Advance(1000);
        return true;
      },
      0, nullptr, 0);
  ex.RunUntil(10000);
  EXPECT_EQ(steps, 10);  // steps at t=0..9000; t=10000 not stepped
  EXPECT_EQ(ex.MinClock(), 10000);
}

// Pins the RunUntil(t) boundary contract documented in executor.h: a lane
// is stepped only while its clock is < t, and the step that crosses t runs
// to completion, leaving the clock past the boundary by up to one step's
// virtual cost (never rolled back, never split).
TEST(ExecutorTest, RunUntilOvershootContract) {
  Executor ex;
  int steps = 0;
  const uint32_t id = ex.AddLane(
      [&](ExecContext& ctx) {
        steps++;
        ctx.Advance(300);
        return true;
      },
      0, nullptr, 0);
  ex.RunUntil(1000);
  // Stepped at t=0,300,600,900; the t=900 step overshoots the boundary.
  EXPECT_EQ(steps, 4);
  EXPECT_EQ(ex.context(id).now, 1200);
  // The lane sits exactly at the next boundary: "< t" means not stepped.
  ex.RunUntil(1200);
  EXPECT_EQ(steps, 4);
  // One tick past its clock admits exactly one more step.
  ex.RunUntil(1201);
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(ex.context(id).now, 1500);
}

TEST(ExecutorTest, ParkedLaneStops) {
  Executor ex;
  int steps = 0;
  ex.AddLane(
      [&](ExecContext& ctx) {
        steps++;
        ctx.Advance(10);
        return steps < 3;
      },
      0, nullptr, 0);
  ex.RunToCompletion();
  EXPECT_EQ(steps, 3);
  EXPECT_FALSE(ex.AnyRunnable());
}

TEST(ExecutorTest, ExternalParkAndResume) {
  Executor ex;
  int steps = 0;
  const uint32_t id = ex.AddLane(
      [&](ExecContext& ctx) {
        steps++;
        ctx.Advance(10);
        return true;
      },
      0, nullptr, 0);
  ex.RunSteps(2);
  ex.ParkLane(id);
  ex.RunSteps(5);
  EXPECT_EQ(steps, 2);
  ex.ResumeLane(id, 1000);
  ex.RunSteps(1);
  EXPECT_EQ(steps, 3);
  EXPECT_GE(ex.context(id).now, 1000);
}

TEST(ExecutorTest, ZeroAdvanceStepStillProgresses) {
  Executor ex;
  int steps = 0;
  ex.AddLane(
      [&](ExecContext&) {
        steps++;
        return steps < 100;  // never advances the clock itself
      },
      0, nullptr, 0);
  ex.RunToCompletion();  // must not live-lock
  EXPECT_EQ(steps, 100);
}

TEST(ExecutorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Executor ex;
    BandwidthChannel link("l", 1000000000);
    std::vector<Nanos> completions;
    for (int i = 0; i < 4; i++) {
      ex.AddLane(
          [&, i](ExecContext& ctx) {
            ctx.now = link.Transfer(ctx.now, 1000 + i * 10);
            completions.push_back(ctx.now);
            return completions.size() < 40;
          },
          0, nullptr, 0);
    }
    ex.RunToCompletion();
    return completions;
  };
  EXPECT_EQ(run(), run());
}

TEST(LatencyModelTest, Table2Endpoints) {
  LatencyModel m;
  // CXL: 64 B ~0.75/0.78 us; 16 KB ~2.46/1.68 us (paper Table 2).
  EXPECT_NEAR(m.cxl_stream_read.Cost(1), 750, 20);
  EXPECT_NEAR(m.cxl_stream_write.Cost(1), 780, 20);
  EXPECT_NEAR(m.cxl_stream_read.Cost(256), 2460, 50);
  EXPECT_NEAR(m.cxl_stream_write.Cost(256), 1680, 100);
  // RDMA: 64 B ~4.55/4.48 us; 16 KB ~7.13/6.12 us.
  EXPECT_NEAR(m.RdmaRead(64), 4550, 30);
  EXPECT_NEAR(m.RdmaWrite(64), 4480, 30);
  EXPECT_NEAR(m.RdmaRead(16384), 7130, 60);
  EXPECT_NEAR(m.RdmaWrite(16384), 6120, 60);
}

TEST(LatencyModelTest, Table1Ordering) {
  LineLatency l;
  EXPECT_LT(l.dram_local, l.dram_remote);
  EXPECT_LT(l.dram_remote, l.cxl_direct_local);
  EXPECT_LT(l.cxl_direct_remote, l.cxl_switch_local);
  EXPECT_LT(l.cxl_switch_local, l.cxl_switch_remote);
  // Paper's ratios: switch-local is 3.76x DRAM-local.
  EXPECT_NEAR(static_cast<double>(l.cxl_switch_local) / l.dram_local, 3.76,
              0.05);
}

}  // namespace
}  // namespace polarcxl::sim
