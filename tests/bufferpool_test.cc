// Tests for the three buffer pool implementations, including a
// parameterized suite over the common BufferPool contract and
// implementation-specific behaviours (CXL metadata survival, tiered RDMA
// amplification).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "bufferpool/cxl_buffer_pool.h"
#include "bufferpool/dram_buffer_pool.h"
#include "bufferpool/tiered_rdma_buffer_pool.h"
#include "cxl/cxl_fabric.h"
#include "cxl/cxl_memory_manager.h"
#include "sim/cpu_cache.h"

namespace polarcxl::bufferpool {
namespace {

using sim::ExecContext;

constexpr uint64_t kPoolPages = 16;

/// Shared infrastructure for any pool kind.
class PoolEnv {
 public:
  PoolEnv() : disk_("disk"), store_(&disk_), remote_(&net_, 99, 1 << 12) {
    POLAR_CHECK(fabric_.AddDevice(32 << 20).ok());
    auto host = fabric_.AttachHost(0);
    POLAR_CHECK(host.ok());
    acc_ = *host;
    manager_ = std::make_unique<cxl::CxlMemoryManager>(fabric_.capacity());
    net_.RegisterHost(0);
    sim::MemorySpace::Options mo;
    mo.name = "dram";
    dram_ = std::make_unique<sim::MemorySpace>(mo);
  }

  std::unique_ptr<BufferPool> MakePool(const std::string& kind,
                                       uint64_t capacity_pages = kPoolPages) {
    ExecContext ctx;
    if (kind == "dram") {
      DramBufferPool::Options o;
      o.capacity_pages = capacity_pages;
      return std::make_unique<DramBufferPool>(o, dram_.get(), &store_);
    }
    if (kind == "cxl") {
      CxlBufferPool::Options o;
      o.capacity_pages = capacity_pages;
      o.tenant = 1;
      auto pool =
          CxlBufferPool::Create(ctx, o, acc_, manager_.get(), &store_);
      POLAR_CHECK(pool.ok());
      return std::move(*pool);
    }
    if (kind == "tiered") {
      TieredRdmaBufferPool::Options o;
      o.lbp_capacity_pages = capacity_pages;
      o.node = 0;
      o.tenant = 1;
      return std::make_unique<TieredRdmaBufferPool>(o, dram_.get(), &remote_,
                                                    &store_);
    }
    POLAR_CHECK_MSG(false, "unknown pool kind");
    return nullptr;
  }

  storage::SimDisk disk_;
  storage::PageStore store_;
  rdma::RdmaNetwork net_;
  rdma::RemoteMemoryPool remote_;
  cxl::CxlFabric fabric_;
  cxl::CxlAccessor* acc_ = nullptr;
  std::unique_ptr<cxl::CxlMemoryManager> manager_;
  std::unique_ptr<sim::MemorySpace> dram_;
};

/// Writes a recognizable page image through the pool.
void WritePagePattern(BufferPool* pool, ExecContext& ctx, PageId id,
                      uint8_t fill, Lsn lsn) {
  auto ref = pool->Fetch(ctx, id, /*for_write=*/true);
  ASSERT_TRUE(ref.ok());
  std::memset(ref->data, fill, kPageSize);
  // Keep the page-LSN convention: bytes [8,16) hold the LSN.
  std::memcpy(ref->data + 8, &lsn, sizeof(lsn));
  pool->TouchRange(ctx, *ref, 0, 256, /*write=*/true);
  pool->Unfix(ctx, *ref, id, /*dirty=*/true, lsn);
}

uint8_t ReadPageFirstByte(BufferPool* pool, ExecContext& ctx, PageId id) {
  auto ref = pool->Fetch(ctx, id, /*for_write=*/false);
  POLAR_CHECK(ref.ok());
  pool->TouchRange(ctx, *ref, 0, 64, /*write=*/false);
  const uint8_t v = ref->data[0];
  pool->Unfix(ctx, *ref, id, /*dirty=*/false, 0);
  return v;
}

class BufferPoolContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  PoolEnv env_;
};

TEST_P(BufferPoolContractTest, MissLoadsFromStoreHitServesFromPool) {
  auto pool = env_.MakePool(GetParam());
  // Seed the store directly.
  std::array<uint8_t, kPageSize> img;
  img.fill(0x5A);
  ExecContext ctx;
  env_.store_.WritePage(ctx, 5, img.data());

  EXPECT_EQ(ReadPageFirstByte(pool.get(), ctx, 5), 0x5A);
  EXPECT_EQ(pool->stats().misses, 1u);
  EXPECT_EQ(ReadPageFirstByte(pool.get(), ctx, 5), 0x5A);
  EXPECT_EQ(pool->stats().hits, 1u);
  EXPECT_TRUE(pool->Cached(5));
}

TEST_P(BufferPoolContractTest, DirtyPageSurvivesEvictionCycle) {
  auto pool = env_.MakePool(GetParam());
  ExecContext ctx;
  WritePagePattern(pool.get(), ctx, 1, 0xAA, /*lsn=*/100);
  // Thrash with enough other pages to evict page 1.
  for (PageId p = 10; p < 10 + 2 * kPoolPages; p++) {
    ReadPageFirstByte(pool.get(), ctx, p);
  }
  EXPECT_FALSE(pool->Cached(1));
  EXPECT_EQ(ReadPageFirstByte(pool.get(), ctx, 1), 0xAA);
}

TEST_P(BufferPoolContractTest, CapacityNeverExceeded) {
  auto pool = env_.MakePool(GetParam());
  ExecContext ctx;
  for (PageId p = 0; p < 3 * kPoolPages; p++) {
    ReadPageFirstByte(pool.get(), ctx, p);
  }
  uint32_t cached = 0;
  for (PageId p = 0; p < 3 * kPoolPages; p++) {
    cached += pool->Cached(p) ? 1 : 0;
  }
  EXPECT_LE(cached, kPoolPages);
  EXPECT_GT(pool->stats().evictions, 0u);
}

TEST_P(BufferPoolContractTest, LruKeepsHotPageResident) {
  auto pool = env_.MakePool(GetParam());
  ExecContext ctx;
  ReadPageFirstByte(pool.get(), ctx, 0);  // hot page
  for (PageId p = 1; p < 2 * kPoolPages; p++) {
    ReadPageFirstByte(pool.get(), ctx, p);
    ReadPageFirstByte(pool.get(), ctx, 0);  // keep touching
  }
  EXPECT_TRUE(pool->Cached(0));
}

TEST_P(BufferPoolContractTest, FlushDirtyPagesPersistsToStore) {
  auto pool = env_.MakePool(GetParam());
  ExecContext ctx;
  WritePagePattern(pool.get(), ctx, 3, 0xCC, /*lsn=*/7);
  EXPECT_FALSE(env_.store_.Contains(3));
  pool->FlushDirtyPages(ctx);
  ASSERT_TRUE(env_.store_.Contains(3));
  EXPECT_EQ(env_.store_.RawPage(3)[0], 0xCC);
}

TEST_P(BufferPoolContractTest, FixedPagesAreNotEvicted) {
  auto pool = env_.MakePool(GetParam());
  ExecContext ctx;
  auto pinned = pool->Fetch(ctx, 0, false);
  ASSERT_TRUE(pinned.ok());
  for (PageId p = 1; p <= 3 * kPoolPages; p++) {
    ReadPageFirstByte(pool.get(), ctx, p);
  }
  EXPECT_TRUE(pool->Cached(0));
  pool->Unfix(ctx, *pinned, 0, false, 0);
}

TEST_P(BufferPoolContractTest, StatsHitRate) {
  auto pool = env_.MakePool(GetParam());
  ExecContext ctx;
  ReadPageFirstByte(pool.get(), ctx, 1);
  ReadPageFirstByte(pool.get(), ctx, 1);
  ReadPageFirstByte(pool.get(), ctx, 1);
  ReadPageFirstByte(pool.get(), ctx, 2);
  EXPECT_DOUBLE_EQ(pool->stats().HitRate(), 0.5);
  pool->ResetStats();
  EXPECT_EQ(pool->stats().fetches, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPools, BufferPoolContractTest,
                         ::testing::Values("dram", "cxl", "tiered"),
                         [](const auto& info) { return info.param; });

// ---------- pool-specific behaviour ----------

TEST(DramPoolTest, LocalDramFootprintIsFullCapacity) {
  PoolEnv env;
  auto pool = env.MakePool("dram");
  EXPECT_EQ(pool->local_dram_bytes(), kPoolPages * kPageSize);
}

TEST(CxlPoolTest, NoLocalDramFootprint) {
  PoolEnv env;
  auto pool = env.MakePool("cxl");
  EXPECT_EQ(pool->local_dram_bytes(), 0u);
}

TEST(CxlPoolTest, MetadataAndPagesSurviveCrashAndReattach) {
  PoolEnv env;
  ExecContext ctx;
  CxlBufferPool::Options o;
  o.capacity_pages = kPoolPages;
  o.tenant = 1;
  auto created =
      CxlBufferPool::Create(ctx, o, env.acc_, env.manager_.get(), &env.store_);
  ASSERT_TRUE(created.ok());
  auto& pool = *created;
  const MemOffset region = pool->region();

  WritePagePattern(pool.get(), ctx, 11, 0xEE, /*lsn=*/55);
  WritePagePattern(pool.get(), ctx, 12, 0xDD, /*lsn=*/66);

  // Crash: the pool object (DRAM state) dies; the region survives.
  pool.reset();
  ExecContext ctx2;
  auto attached =
      CxlBufferPool::Attach(ctx2, o, region, env.acc_, &env.store_);
  ASSERT_TRUE(attached.ok());
  auto& repool = *attached;
  repool->FinishRecovery(ctx2, /*rebuild_lists=*/true);

  EXPECT_TRUE(repool->Cached(11));
  EXPECT_TRUE(repool->Cached(12));
  EXPECT_EQ(ReadPageFirstByte(repool.get(), ctx2, 11), 0xEE);
  EXPECT_EQ(ReadPageFirstByte(repool.get(), ctx2, 12), 0xDD);
  // Metadata survived: block LSNs are intact.
  bool found = false;
  for (uint32_t b = 0; b < repool->num_blocks(); b++) {
    const CxlBlockMeta m = repool->LoadMeta(ctx2, b);
    if (m.in_use != 0 && m.id == 11) {
      EXPECT_EQ(m.lsn, 55u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CxlPoolTest, AttachRejectsUnformattedRegion) {
  PoolEnv env;
  ExecContext ctx;
  CxlBufferPool::Options o;
  o.capacity_pages = kPoolPages;
  auto r = CxlBufferPool::Attach(ctx, o, /*region=*/4 << 20, env.acc_,
                                 &env.store_);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(CxlPoolTest, WriteFixSetsDurableLockState) {
  PoolEnv env;
  ExecContext ctx;
  CxlBufferPool::Options o;
  o.capacity_pages = kPoolPages;
  o.tenant = 1;
  auto created =
      CxlBufferPool::Create(ctx, o, env.acc_, env.manager_.get(), &env.store_);
  ASSERT_TRUE(created.ok());
  auto& pool = *created;

  auto ref = pool->Fetch(ctx, 8, /*for_write=*/true);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(pool->LoadMeta(ctx, ref->block).lock_state, 1u);
  pool->Unfix(ctx, *ref, 8, true, 10);
  EXPECT_EQ(pool->LoadMeta(ctx, ref->block).lock_state, 0u);
}

TEST(CxlPoolTest, LruMutexClearAfterOperations) {
  PoolEnv env;
  ExecContext ctx;
  CxlBufferPool::Options o;
  o.capacity_pages = kPoolPages;
  o.tenant = 1;
  auto created =
      CxlBufferPool::Create(ctx, o, env.acc_, env.manager_.get(), &env.store_);
  ASSERT_TRUE(created.ok());
  auto& pool = *created;
  for (PageId p = 0; p < 2 * kPoolPages; p++) {
    ReadPageFirstByte(pool.get(), ctx, p);
  }
  EXPECT_EQ(pool->LoadHeader(ctx).lru_mutex, 0u);
}

TEST(CxlPoolTest, FrameAdoptsPageLsnFromStoreImage) {
  PoolEnv env;
  ExecContext ctx;
  // Store a page whose header bytes [8,16) carry LSN 777.
  std::array<uint8_t, kPageSize> img{};
  const Lsn lsn = 777;
  std::memcpy(img.data() + 8, &lsn, sizeof(lsn));
  env.store_.WritePage(ctx, 20, img.data());

  CxlBufferPool::Options o;
  o.capacity_pages = kPoolPages;
  o.tenant = 1;
  auto created =
      CxlBufferPool::Create(ctx, o, env.acc_, env.manager_.get(), &env.store_);
  ASSERT_TRUE(created.ok());
  auto& pool = *created;
  auto ref = pool->Fetch(ctx, 20, false);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(pool->LoadMeta(ctx, ref->block).lsn, 777u);
  pool->Unfix(ctx, *ref, 20, false, 0);
}

TEST(TieredPoolTest, MissTransfersFullPageOverRdma) {
  PoolEnv env;
  auto pool = env.MakePool("tiered");
  ExecContext ctx;
  // Seed remote pool with the page so the miss is a remote hit.
  std::array<uint8_t, kPageSize> img;
  img.fill(0x42);
  env.remote_.WritePage(ctx, 0, 1, 9, img.data()).ok();
  env.net_.ResetStats();

  EXPECT_EQ(ReadPageFirstByte(pool.get(), ctx, 9), 0x42);
  // One full-page RDMA READ despite touching only 64 bytes: the read
  // amplification the paper measures.
  EXPECT_EQ(env.net_.total_bytes(), static_cast<uint64_t>(kPageSize));
}

TEST(TieredPoolTest, DirtyEvictionWritesFullPageToRemote) {
  PoolEnv env;
  auto pool = env.MakePool("tiered");
  ExecContext ctx;
  WritePagePattern(pool.get(), ctx, 1, 0xAB, 5);
  env.net_.ResetStats();
  for (PageId p = 10; p < 10 + 2 * kPoolPages; p++) {
    ReadPageFirstByte(pool.get(), ctx, p);
  }
  EXPECT_FALSE(pool->Cached(1));
  EXPECT_TRUE(env.remote_.Contains(1, 1));
  // The page went back over RDMA at full size.
  auto* tiered = static_cast<TieredRdmaBufferPool*>(pool.get());
  EXPECT_GT(tiered->stats().dirty_writebacks, 0u);
}

TEST(TieredPoolTest, RemoteTierSurvivesInstanceLoss) {
  PoolEnv env;
  ExecContext ctx;
  {
    auto pool = env.MakePool("tiered");
    WritePagePattern(pool.get(), ctx, 2, 0x77, 9);
    // Evict it so it reaches the remote pool.
    for (PageId p = 10; p < 10 + 2 * kPoolPages; p++) {
      ReadPageFirstByte(pool.get(), ctx, p);
    }
  }  // instance dies; remote pool object remains

  auto pool2 = env.MakePool("tiered");
  EXPECT_EQ(ReadPageFirstByte(pool2.get(), ctx, 2), 0x77);
  auto* tiered = static_cast<TieredRdmaBufferPool*>(pool2.get());
  EXPECT_EQ(tiered->remote_hits(), 1u);
}

}  // namespace
}  // namespace polarcxl::bufferpool
