// Fault-subsystem tests: plan parsing/ordering/round-trip, injector
// arm/disarm pass-through, per-domain windows, seeded probability-draw
// determinism, lock fencing, and the chaos driver's determinism contract —
// the canonical schedule must produce bit-identical timelines and
// lane_steps for any sweep thread count, with pinned values guarding
// against silent drift of the simulation or the fault model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "harness/chaos_driver.h"
#include "harness/sweep_runner.h"
#include "sharing/dist_lock_manager.h"

namespace polarcxl::faults {
namespace {

using harness::ChaosConfig;
using harness::ChaosResult;
using harness::RunChaos;
using sharing::CxlLockTransport;
using sharing::DistLockManager;
using sim::ExecContext;

// ---------- FaultPlan ----------

TEST(FaultPlanTest, ParsesDocumentedSyntax) {
  auto plan = FaultPlan::Parse(
      "# schedule\n"
      "seed 42\n"
      "cxl-down    at=10ms for=5ms\n"
      "cxl-flaky   at=20ms for=4ms p=0.25\n"
      "nic-degrade at=1ms  for=2ms add=3us perkb=40\n"
      "disk-stall  at=0    for=1ms add=300us target=2\n"
      "node-crash  at=30ms for=2ms target=1\n");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->events.size(), 5u);
  // Parse normalizes: events come back sorted by `at`.
  EXPECT_EQ(plan->events[0].kind, FaultKind::kDiskStall);
  EXPECT_EQ(plan->events[0].at, 0);
  EXPECT_EQ(plan->events[0].until, Millis(1));
  EXPECT_EQ(plan->events[0].extra_latency, Micros(300));
  EXPECT_EQ(plan->events[0].target, 2u);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kNicDegrade);
  EXPECT_EQ(plan->events[1].extra_latency, Micros(3));
  EXPECT_DOUBLE_EQ(plan->events[1].per_kb_ns, 40.0);
  EXPECT_EQ(plan->events[2].kind, FaultKind::kCxlDown);
  EXPECT_EQ(plan->events[2].target, kAnyTarget);
  EXPECT_EQ(plan->events[3].kind, FaultKind::kCxlFlaky);
  EXPECT_DOUBLE_EQ(plan->events[3].probability, 0.25);
  EXPECT_EQ(plan->events[4].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan->events[4].at, Millis(30));
  EXPECT_EQ(plan->events[4].until, Millis(32));
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  FaultPlan plan;
  plan.seed = 9;
  plan.Add({FaultKind::kCxlDown, Millis(2), Millis(3)});
  {
    FaultEvent e{FaultKind::kNicFlaky, Millis(1), Millis(4)};
    e.probability = 0.5;
    e.target = 7;
    plan.Add(e);
  }
  {
    FaultEvent e{FaultKind::kCxlDegrade, Micros(10), Micros(600)};
    e.extra_latency = 250;
    e.per_kb_ns = 12.5;
    plan.Add(e);
  }
  plan.Normalize();

  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->seed, plan.seed);
  ASSERT_EQ(reparsed->events.size(), plan.events.size());
  for (size_t i = 0; i < plan.events.size(); i++) {
    EXPECT_EQ(reparsed->events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(reparsed->events[i].at, plan.events[i].at) << i;
    EXPECT_EQ(reparsed->events[i].until, plan.events[i].until) << i;
    EXPECT_EQ(reparsed->events[i].target, plan.events[i].target) << i;
    EXPECT_DOUBLE_EQ(reparsed->events[i].probability,
                     plan.events[i].probability)
        << i;
    EXPECT_EQ(reparsed->events[i].extra_latency, plan.events[i].extra_latency)
        << i;
    EXPECT_DOUBLE_EQ(reparsed->events[i].per_kb_ns, plan.events[i].per_kb_ns)
        << i;
  }
}

TEST(FaultPlanTest, RejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::Parse("warp-core-breach at=1ms for=1ms").ok());
  EXPECT_FALSE(FaultPlan::Parse("cxl-down for=1ms").ok());          // no at
  EXPECT_FALSE(FaultPlan::Parse("cxl-down at=1ms 5ms").ok());       // bare
  EXPECT_FALSE(FaultPlan::Parse("cxl-down at=1ms dur=5ms").ok());   // key
  EXPECT_FALSE(FaultPlan::Parse("cxl-down at=1parsec for=1ms").ok());
  EXPECT_FALSE(FaultPlan::Parse("seed banana").ok());
  EXPECT_FALSE(FaultPlan::Parse("cxl-down at=1ms").ok());  // empty window
  EXPECT_FALSE(FaultPlan::Parse("cxl-flaky at=1ms for=1ms p=1.5").ok());
}

TEST(FaultPlanTest, ValidateRejectsBadWindows) {
  FaultPlan inverted;
  inverted.Add({FaultKind::kCxlDown, 100, 50});
  EXPECT_TRUE(inverted.Validate().IsInvalidArgument());

  FaultPlan bad_p;
  {
    FaultEvent e{FaultKind::kNicFlaky, 0, 100};
    e.probability = -0.1;
    bad_p.Add(e);
  }
  EXPECT_TRUE(bad_p.Validate().IsInvalidArgument());

  FaultPlan ok;
  ok.Add({FaultKind::kCxlDown, 0, 1});
  EXPECT_TRUE(ok.Validate().ok());
}

TEST(FaultPlanTest, ParseErrorsNameLineAndToken) {
  auto bad_kind =
      FaultPlan::Parse("seed 1\nwarp-core-breach at=1ms for=1ms");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.status().message().find("line 2"), std::string::npos)
      << bad_kind.status().ToString();
  EXPECT_NE(bad_kind.status().message().find("warp-core-breach"),
            std::string::npos);

  auto bad_value = FaultPlan::Parse("cxl-down at=1parsec for=1ms");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(bad_value.status().message().find("1parsec"), std::string::npos)
      << bad_value.status().ToString();
  EXPECT_NE(bad_value.status().message().find("'at'"), std::string::npos);
}

TEST(FaultPlanTest, ValidateRejectsOverlappingWindowsForSameTarget) {
  // Same kind, both wildcard target, intersecting windows: rejected.
  FaultPlan overlap;
  overlap.Add({FaultKind::kCxlDown, Millis(1), Millis(3)});
  overlap.Add({FaultKind::kCxlDown, Millis(2), Millis(4)});
  const Status s = overlap.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("overlapping"), std::string::npos)
      << s.ToString();

  // A wildcard window overlaps every specific target of its kind.
  FaultPlan wild;
  wild.Add({FaultKind::kNicDown, Millis(1), Millis(3)});
  {
    FaultEvent e{FaultKind::kNicDown, Millis(2), Millis(4)};
    e.target = 1;
    wild.Add(e);
  }
  EXPECT_TRUE(wild.Validate().IsInvalidArgument());

  // Distinct targets may overlap freely.
  FaultPlan distinct;
  {
    FaultEvent e{FaultKind::kNicDown, Millis(1), Millis(3)};
    e.target = 1;
    distinct.Add(e);
  }
  {
    FaultEvent e{FaultKind::kNicDown, Millis(2), Millis(4)};
    e.target = 2;
    distinct.Add(e);
  }
  EXPECT_TRUE(distinct.Validate().ok());

  // Different kinds may overlap, and back-to-back windows ([1,2) then
  // [2,3)) do not intersect.
  FaultPlan adjacent;
  adjacent.Add({FaultKind::kCxlDown, Millis(1), Millis(2)});
  adjacent.Add({FaultKind::kCxlDown, Millis(2), Millis(3)});
  adjacent.Add({FaultKind::kNicDown, Millis(1), Millis(3)});
  EXPECT_TRUE(adjacent.Validate().ok());

  // Parse runs the same validation.
  EXPECT_FALSE(
      FaultPlan::Parse("cxl-down at=1ms for=5ms\ncxl-down at=2ms for=5ms")
          .ok());
}

TEST(FaultPlanTest, NormalizeOrdersByTimeKindTarget) {
  FaultPlan plan;
  FaultEvent b{FaultKind::kNicDown, 100, 200};
  b.target = 2;
  FaultEvent a{FaultKind::kCxlDown, 100, 200};
  FaultEvent c{FaultKind::kNicDown, 100, 200};
  c.target = 1;
  FaultEvent first{FaultKind::kNodeCrash, 50, 60};
  plan.Add(b).Add(a).Add(c).Add(first);
  plan.Normalize();
  EXPECT_EQ(plan.events[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kCxlDown);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kNicDown);
  EXPECT_EQ(plan.events[2].target, 1u);
  EXPECT_EQ(plan.events[3].target, 2u);
}

TEST(FaultPlanTest, ShiftByRebasesEveryEvent) {
  FaultPlan plan;
  plan.Add({FaultKind::kCxlDown, 10, 20}).Add({FaultKind::kDiskStall, 0, 5});
  plan.ShiftBy(1000);
  EXPECT_EQ(plan.events[0].at, 1010);
  EXPECT_EQ(plan.events[0].until, 1020);
  EXPECT_EQ(plan.events[1].at, 1000);
  EXPECT_EQ(plan.events[1].until, 1005);
}

// ---------- FaultInjector ----------

TEST(FaultInjectorTest, HooksPassThroughWhenDisarmed) {
  FaultInjector inj;
  ExecContext ctx;
  ctx.now = 12345;
  EXPECT_TRUE(inj.OnCxlAccess(ctx, 0).ok());
  EXPECT_TRUE(inj.OnVerbsOp(ctx, 0, 1).ok());
  inj.OnCxlTransfer(ctx, 0, 1 << 20);
  inj.OnVerbsTransfer(ctx, 0, 1, 1 << 20);
  inj.OnDiskOp(ctx);
  EXPECT_FALSE(inj.AllocShouldFail(ctx.now));
  EXPECT_FALSE(inj.CxlDown(ctx.now, 0));
  EXPECT_FALSE(inj.NicDown(ctx.now, 0));
  EXPECT_EQ(ctx.now, 12345);  // nothing charged
  EXPECT_EQ(inj.stats().cxl_failures, 0u);
  EXPECT_TRUE(inj.EventsOfKind(FaultKind::kNodeCrash).empty());
}

TEST(FaultInjectorTest, DownWindowRejectsThenRecovers) {
  FaultInjector inj;
  FaultPlan plan;
  plan.Add({FaultKind::kCxlDown, 1000, 2000});
  ASSERT_TRUE(inj.Arm(plan).ok());

  ExecContext ctx;
  ctx.now = 500;
  EXPECT_TRUE(inj.OnCxlAccess(ctx, 0).ok());
  ctx.now = 1500;
  Status s = inj.OnCxlAccess(ctx, 0);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(ctx.now, 1500);  // rejection is instantaneous
  EXPECT_TRUE(inj.CxlDown(1500, 0));
  ctx.now = 2000;  // half-open window: until is already healthy
  EXPECT_TRUE(inj.OnCxlAccess(ctx, 0).ok());
  EXPECT_FALSE(inj.CxlDown(2000, 0));
  EXPECT_EQ(inj.stats().cxl_failures, 1u);

  inj.Disarm();
  ctx.now = 1500;
  EXPECT_TRUE(inj.OnCxlAccess(ctx, 0).ok());
  EXPECT_FALSE(inj.armed());
  // Stats survive Disarm — drivers read them after the run ends.
  EXPECT_EQ(inj.stats().cxl_failures, 1u);
  inj.ResetStats();
  EXPECT_EQ(inj.stats().cxl_failures, 0u);
}

TEST(FaultInjectorTest, DegradeInflatesLatencyAndBandwidth) {
  FaultInjector inj;
  FaultPlan plan;
  {
    FaultEvent e{FaultKind::kCxlDegrade, 0, 10000};
    e.extra_latency = 300;
    e.per_kb_ns = 100.0;
    plan.Add(e);
  }
  ASSERT_TRUE(inj.Arm(plan).ok());

  ExecContext ctx;
  ctx.now = 100;
  ASSERT_TRUE(inj.OnCxlAccess(ctx, 0).ok());
  EXPECT_EQ(ctx.now, 400);    // +extra_latency
  EXPECT_EQ(ctx.t_mem, 300);
  inj.OnCxlTransfer(ctx, 0, 2048);  // 2 KiB * 100ns/KiB
  EXPECT_EQ(ctx.now, 600);
  EXPECT_EQ(inj.stats().cxl_degraded, 2u);

  // NIC degradation charges but never fails.
  FaultInjector nic;
  FaultPlan nic_plan;
  {
    FaultEvent e{FaultKind::kNicDegrade, 0, 10000};
    e.extra_latency = 1000;
    nic_plan.Add(e);
  }
  ASSERT_TRUE(nic.Arm(nic_plan).ok());
  ExecContext nctx;
  EXPECT_TRUE(nic.OnVerbsOp(nctx, 0, 1).ok());
  nic.OnVerbsTransfer(nctx, 0, 1, 0);
  EXPECT_EQ(nctx.now, 1000);
  EXPECT_EQ(nic.stats().nic_degraded, 1u);
  EXPECT_EQ(nic.stats().nic_failures, 0u);
}

TEST(FaultInjectorTest, TargetFiltering) {
  FaultInjector inj;
  FaultPlan plan;
  {
    FaultEvent e{FaultKind::kCxlDown, 0, 1000};
    e.target = 2;
    plan.Add(e);
  }
  {
    FaultEvent e{FaultKind::kNicDown, 0, 1000};
    e.target = 5;
    plan.Add(e);
  }
  ASSERT_TRUE(inj.Arm(plan).ok());

  ExecContext ctx;
  ctx.now = 500;
  EXPECT_TRUE(inj.OnCxlAccess(ctx, 3).ok());
  EXPECT_TRUE(inj.OnCxlAccess(ctx, 2).IsIOError());
  EXPECT_TRUE(inj.CxlDown(500, 2));
  EXPECT_FALSE(inj.CxlDown(500, 3));

  // Verbs ops fail when either endpoint is browned out.
  EXPECT_TRUE(inj.OnVerbsOp(ctx, 0, 4).ok());
  EXPECT_TRUE(inj.OnVerbsOp(ctx, 0, 5).IsIOError());
  EXPECT_TRUE(inj.OnVerbsOp(ctx, 5, 0).IsIOError());
  EXPECT_TRUE(inj.NicDown(500, 5));
  EXPECT_FALSE(inj.NicDown(500, 0));
}

TEST(FaultInjectorTest, FlakyDrawsDeterministicPerLane) {
  FaultPlan plan;
  {
    FaultEvent e{FaultKind::kCxlFlaky, 0, 1'000'000};
    e.probability = 0.5;
    plan.Add(e);
  }
  plan.seed = 1234;

  // The decision for (lane, draw index) must not depend on how draws from
  // different lanes interleave — that is what makes multi-lane runs
  // schedule-independent.
  const auto draws = [](FaultInjector& inj, uint32_t lane, int n) {
    std::vector<bool> out;
    for (int i = 0; i < n; i++) {
      ExecContext ctx;
      ctx.now = 500;
      ctx.lane_id = lane;
      out.push_back(inj.OnCxlAccess(ctx, 0).IsIOError());
    }
    return out;
  };

  FaultInjector sequential;
  ASSERT_TRUE(sequential.Arm(plan).ok());
  const std::vector<bool> lane0 = draws(sequential, 0, 32);
  const std::vector<bool> lane1 = draws(sequential, 1, 32);

  FaultInjector interleaved;
  ASSERT_TRUE(interleaved.Arm(plan).ok());
  std::vector<bool> lane0_i, lane1_i;
  for (int i = 0; i < 32; i++) {
    lane1_i.push_back(draws(interleaved, 1, 1)[0]);  // opposite order
    lane0_i.push_back(draws(interleaved, 0, 1)[0]);
  }
  EXPECT_EQ(lane0, lane0_i);
  EXPECT_EQ(lane1, lane1_i);
  EXPECT_NE(lane0, lane1);  // lanes draw from distinct streams

  // A different seed yields a different decision sequence.
  FaultPlan reseeded = plan;
  reseeded.seed = 99;
  FaultInjector other;
  ASSERT_TRUE(other.Arm(reseeded).ok());
  EXPECT_NE(draws(other, 0, 32), lane0);

  // Re-arming the same plan resets the draw counters: full replay.
  ASSERT_TRUE(sequential.Arm(plan).ok());
  EXPECT_EQ(draws(sequential, 0, 32), lane0);
}

TEST(FaultInjectorTest, AllocFailAndDiskStallWindows) {
  FaultInjector inj;
  FaultPlan plan;
  plan.Add({FaultKind::kAllocFail, 100, 200});
  {
    FaultEvent e{FaultKind::kDiskStall, 1000, 2000};
    e.extra_latency = 777;
    plan.Add(e);
  }
  ASSERT_TRUE(inj.Arm(plan).ok());

  EXPECT_FALSE(inj.AllocShouldFail(99));
  EXPECT_TRUE(inj.AllocShouldFail(150));
  EXPECT_FALSE(inj.AllocShouldFail(200));
  EXPECT_EQ(inj.stats().alloc_failures, 1u);

  ExecContext ctx;
  ctx.now = 1500;
  inj.OnDiskOp(ctx);
  EXPECT_EQ(ctx.now, 1500 + 777);
  ctx.now = 500;
  inj.OnDiskOp(ctx);
  EXPECT_EQ(ctx.now, 500);
  EXPECT_EQ(inj.stats().disk_stalls, 1u);
}

TEST(FaultInjectorTest, EventsOfKindReturnsScheduleOrder) {
  FaultInjector inj;
  FaultPlan plan;
  {
    FaultEvent e{FaultKind::kNodeCrash, 500, 600};
    e.target = 1;
    plan.Add(e);
  }
  plan.Add({FaultKind::kCxlDown, 50, 80});
  {
    FaultEvent e{FaultKind::kNodeCrash, 100, 150};
    e.target = 2;
    plan.Add(e);
  }
  ASSERT_TRUE(inj.Arm(plan).ok());

  const auto crashes = inj.EventsOfKind(FaultKind::kNodeCrash);
  ASSERT_EQ(crashes.size(), 2u);
  EXPECT_EQ(crashes[0].at, 100);
  EXPECT_EQ(crashes[0].target, 2u);
  EXPECT_EQ(crashes[1].at, 500);
  inj.Disarm();
  EXPECT_TRUE(inj.EventsOfKind(FaultKind::kNodeCrash).empty());
}

// ---------- DistLockManager fencing ----------

TEST(DistLockFencingTest, FenceForceReleasesDeadNodesLocks) {
  DistLockManager locks(std::make_unique<CxlLockTransport>(0));
  locks.EnableFencing();

  ExecContext a;  // node 1, crashes while holding three locks
  locks.AcquireExclusive(a, 1, 7);
  locks.AcquireExclusive(a, 1, 8);
  locks.AcquireShared(a, 1, 9);
  EXPECT_EQ(locks.HoldCount(1), 3u);

  // Node 2 fences the dead node. The fence closes the dead node's hold
  // intervals at fence time: later acquirers serialize after the fence,
  // never "before the crash".
  ExecContext f;
  f.now = 5000;
  EXPECT_EQ(locks.FenceNode(f, 2, 1), 3u);
  EXPECT_EQ(locks.HoldCount(1), 0u);
  EXPECT_EQ(locks.fenced(), 3u);

  ExecContext b;
  b.now = 1000;  // requested before the fence landed
  locks.AcquireExclusive(b, 2, 7);
  EXPECT_EQ(b.now, 5000);  // granted at the fence, short wait = spin

  // Fencing an empty node is a no-op (idempotent crash handling).
  ExecContext f2;
  f2.now = 6000;
  EXPECT_EQ(locks.FenceNode(f2, 2, 1), 0u);
  EXPECT_EQ(locks.fenced(), 3u);

  // Normal release drops the hold from the fencing book-keeping.
  ExecContext c;
  c.now = 7000;
  locks.AcquireShared(c, 3, 9);
  EXPECT_EQ(locks.HoldCount(3), 1u);
  locks.ReleaseShared(c, 3, 9);
  EXPECT_EQ(locks.HoldCount(3), 0u);
}

TEST(DistLockFencingTest, FencingOffByDefault) {
  DistLockManager locks(std::make_unique<CxlLockTransport>(0));
  EXPECT_FALSE(locks.fencing_enabled());
  ExecContext a;
  locks.AcquireExclusive(a, 1, 7);
  // Without fencing there is no hold book-keeping (zero-overhead default).
  EXPECT_EQ(locks.HoldCount(1), 0u);
}

// ---------- chaos driver determinism ----------

/// Small-but-real chaos run: same shape as bench_fig14, scaled down so the
/// whole determinism battery stays in test time.
ChaosConfig QuickChaos(engine::BufferPoolKind kind) {
  ChaosConfig c;
  c.kind = kind;
  c.lanes = 4;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(20);
  c.measure = Millis(200);
  c.bucket = Millis(20);
  c.checkpoint_interval = Millis(10);
  c.plan = harness::CanonicalChaosPlan(c.measure);
  return c;
}

void ExpectIdentical(const ChaosResult& x, const ChaosResult& y) {
  EXPECT_EQ(x.lane_steps, y.lane_steps);
  EXPECT_EQ(x.ok_ops, y.ok_ops);
  EXPECT_EQ(x.failed_ops, y.failed_ops);
  EXPECT_EQ(x.degraded_fetches, y.degraded_fetches);
  EXPECT_EQ(x.fault_retries, y.fault_retries);
  EXPECT_EQ(x.fault_rejections, y.fault_rejections);
  EXPECT_EQ(x.virtual_end, y.virtual_end);
  ASSERT_EQ(x.ok.num_buckets(), y.ok.num_buckets());
  for (size_t b = 0; b < x.ok.num_buckets(); b++) {
    EXPECT_EQ(x.ok.bucket(b), y.ok.bucket(b)) << "ok bucket " << b;
  }
  ASSERT_EQ(x.failed.num_buckets(), y.failed.num_buckets());
  for (size_t b = 0; b < x.failed.num_buckets(); b++) {
    EXPECT_EQ(x.failed.bucket(b), y.failed.bucket(b)) << "failed bucket " << b;
  }
}

TEST(ChaosDriverTest, RepeatRunsAreBitIdentical) {
  const ChaosConfig config = QuickChaos(engine::BufferPoolKind::kCxl);
  ExpectIdentical(RunChaos(config), RunChaos(config));
}

TEST(ChaosDriverTest, SweepThreadCountInvariant) {
  std::vector<ChaosConfig> configs = {
      QuickChaos(engine::BufferPoolKind::kCxl),
      QuickChaos(engine::BufferPoolKind::kDram),
      QuickChaos(engine::BufferPoolKind::kTieredRdma),
  };
  const auto run = [](const ChaosConfig& c) { return RunChaos(c); };
  const auto serial =
      harness::RunSweep<ChaosConfig, ChaosResult>(configs, run, 1);
  const auto parallel =
      harness::RunSweep<ChaosConfig, ChaosResult>(configs, run, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); i++) {
    SCOPED_TRACE(harness::ChaosPoolName(configs[i].kind));
    ExpectIdentical(serial[i], parallel[i]);
  }
}

TEST(ChaosDriverTest, CanonicalScheduleGracefulDegradation) {
  const ChaosResult r = RunChaos(QuickChaos(engine::BufferPoolKind::kCxl));

  // The CXL outage degrades the pool instead of killing it: storage
  // fallbacks happen, some writes are rejected, but work keeps completing
  // in every bucket of the measurement window — including the outage.
  EXPECT_GT(r.degraded_fetches, 0u);
  EXPECT_GT(r.fault_rejections, 0u);
  EXPECT_GT(r.injected.cxl_failures, 0u);
  EXPECT_GT(r.ok_ops, r.failed_ops);
  const size_t window_buckets =
      static_cast<size_t>(r.window / r.ok.bucket_width());
  ASSERT_GE(r.ok.num_buckets(), window_buckets);
  for (size_t b = 0; b < window_buckets; b++) {
    EXPECT_GT(r.ok.bucket(b), 0u) << "no progress in bucket " << b;
  }
  // Failures are confined to fault windows: the first bucket (before any
  // fault fires at 20% of the window) must be clean.
  EXPECT_EQ(r.failed.bucket(0), 0u);
}

TEST(ChaosDriverTest, CanonicalScheduleLaneStepsPinned) {
  // Pinned bit-determinism guard for the canonical quick schedule. These
  // move only when the simulation's cost model or the fault subsystem
  // changes semantically; host speed, thread count and reruns must not
  // move them. Update deliberately alongside BENCH_fault_resilience.json.
  const ChaosResult cxl = RunChaos(QuickChaos(engine::BufferPoolKind::kCxl));
  const ChaosResult dram = RunChaos(QuickChaos(engine::BufferPoolKind::kDram));
  const ChaosResult rdma =
      RunChaos(QuickChaos(engine::BufferPoolKind::kTieredRdma));
  EXPECT_EQ(cxl.lane_steps, 37619u);
  EXPECT_EQ(dram.lane_steps, 47724u);
  EXPECT_EQ(rdma.lane_steps, 36399u);
}

TEST(ChaosDriverTest, NodeCrashFreezesLanesThenRecovers) {
  ChaosConfig config = QuickChaos(engine::BufferPoolKind::kDram);
  // Replace the canonical schedule with a single instance-node freeze over
  // [30%, 50%) of the window.
  config.plan = faults::FaultPlan{};
  config.plan.seed = 7;
  {
    FaultEvent e{FaultKind::kNodeCrash, Millis(60), Millis(100)};
    e.target = 1;  // the chaos driver's instance node
    config.plan.Add(e);
  }

  const ChaosResult crashed = RunChaos(config);

  ChaosConfig baseline = config;
  baseline.plan = faults::FaultPlan{};
  const ChaosResult healthy = RunChaos(baseline);

  // The freeze removes throughput (no failures — the node is gone, not
  // erroring), and the instance resumes at full rate afterwards.
  EXPECT_LT(crashed.ok_ops, healthy.ok_ops);
  EXPECT_EQ(crashed.failed_ops, 0u);
  const size_t frozen_bucket = static_cast<size_t>(Millis(70) /
                                                   crashed.ok.bucket_width());
  EXPECT_LT(crashed.ok.bucket(frozen_bucket),
            healthy.ok.bucket(frozen_bucket) / 4);
  const size_t last = static_cast<size_t>(crashed.window /
                                          crashed.ok.bucket_width()) - 1;
  EXPECT_GT(crashed.ok.bucket(last), 0u);

  // Crash handling is part of the deterministic contract too.
  ExpectIdentical(crashed, RunChaos(config));
}

}  // namespace
}  // namespace polarcxl::faults
