// In-world parallelism determinism: an epoch-parallel run must be
// bit-identical for every POLAR_WORLD_THREADS value — the sharding, the
// barrier drain order and the frozen-window channel observations are all
// thread-count independent by construction. The matrix covers pooling
// worlds (both pool kinds), a chaos world with an armed fault plan (single
// group: must also match the legacy serial driver exactly, divergence 0),
// snapshot forks and cached-world re-sharding, and cross-group park/resume
// deferral at the raw executor level.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "harness/chaos_driver.h"
#include "harness/instance_driver.h"
#include "harness/world_builder.h"
#include "sim/executor.h"

namespace polarcxl::harness {
namespace {

PoolingConfig SmallPooling(engine::BufferPoolKind kind, int world_threads) {
  PoolingConfig c;
  c.kind = kind;
  c.instances = 4;
  c.lanes_per_instance = 3;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(10);
  c.measure = Millis(40);
  c.world_threads = world_threads;
  return c;
}

void ExpectPoolingIdentical(const PoolingResult& a, const PoolingResult& b) {
  EXPECT_EQ(a.lane_steps, b.lane_steps);
  EXPECT_EQ(a.virtual_end, b.virtual_end);
  EXPECT_EQ(a.metrics.queries, b.metrics.queries);
  EXPECT_EQ(a.metrics.events, b.metrics.events);
  EXPECT_EQ(a.metrics.latency.count(), b.metrics.latency.count());
  EXPECT_DOUBLE_EQ(a.metrics.latency.Mean(), b.metrics.latency.Mean());
  EXPECT_EQ(a.metrics.latency.Percentile(95), b.metrics.latency.Percentile(95));
  EXPECT_DOUBLE_EQ(a.nic_gbps, b.nic_gbps);
  EXPECT_DOUBLE_EQ(a.cxl_gbps, b.cxl_gbps);
  EXPECT_EQ(a.local_dram_bytes, b.local_dram_bytes);
  EXPECT_EQ(a.line_hits, b.line_hits);
  EXPECT_EQ(a.line_misses, b.line_misses);
  EXPECT_EQ(a.pages_read_io, b.pages_read_io);
  EXPECT_EQ(a.breakdown.total, b.breakdown.total);
  EXPECT_EQ(a.breakdown.mem, b.breakdown.mem);
  EXPECT_EQ(a.breakdown.io, b.breakdown.io);
  EXPECT_EQ(a.breakdown.net, b.breakdown.net);
  EXPECT_EQ(a.breakdown.lock, b.breakdown.lock);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.drain_divergence, b.drain_divergence);
}

TEST(ParallelWorldTest, PoolingBitIdenticalAcrossThreadCounts) {
  for (auto kind :
       {engine::BufferPoolKind::kCxl, engine::BufferPoolKind::kTieredRdma}) {
    SCOPED_TRACE(static_cast<int>(kind));
    // One cache: the N=1 run builds the world, every later thread count
    // re-shards the cached world via SetThreads — the production path a
    // sweep over POLAR_WORLD_THREADS takes.
    WorldCache cache;
    const PoolingResult base = RunPooling(SmallPooling(kind, 1), &cache);
    EXPECT_FALSE(base.snapshot_hit);
    EXPECT_GT(base.epochs, 0u);
    for (int threads : {2, 4, 8}) {
      SCOPED_TRACE(threads);
      const PoolingResult r = RunPooling(SmallPooling(kind, threads), &cache);
      EXPECT_TRUE(r.snapshot_hit);
      ExpectPoolingIdentical(base, r);
    }
    // A cold build at another thread count must agree with the forks too.
    const PoolingResult cold = RunPooling(SmallPooling(kind, 4));
    ExpectPoolingIdentical(base, cold);
  }
}

TEST(ParallelWorldTest, SnapshotForkIsBitIdenticalInEpochMode) {
  WorldCache cache;
  const PoolingConfig c = SmallPooling(engine::BufferPoolKind::kCxl, 2);
  const PoolingResult cold = RunPooling(c, &cache);
  EXPECT_FALSE(cold.snapshot_hit);
  const PoolingResult fork = RunPooling(c, &cache);
  EXPECT_TRUE(fork.snapshot_hit);
  ExpectPoolingIdentical(cold, fork);
}

ChaosConfig SmallChaos(int world_threads) {
  ChaosConfig c;
  c.kind = engine::BufferPoolKind::kCxl;
  c.lanes = 4;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(10);
  c.measure = Millis(120);
  c.plan = CanonicalChaosPlan(c.measure);
  c.world_threads = world_threads;
  return c;
}

// A chaos world is single-instance — one shard group — so epoch execution
// replays the serial timeline exactly: every deferred charge re-commits to
// its observed completion (divergence 0) and the whole result, fault
// timeline included, matches the legacy serial driver bit for bit.
TEST(ParallelWorldTest, ChaosWithArmedPlanMatchesSerialExactly) {
  const ChaosResult serial = RunChaos(SmallChaos(0));
  EXPECT_EQ(serial.drain_divergence, 0u);  // serial path never drains
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    const ChaosResult r = RunChaos(SmallChaos(threads));
    EXPECT_EQ(r.drain_divergence, 0u);
    EXPECT_GT(r.epochs, 0u);
    EXPECT_EQ(r.ok_ops, serial.ok_ops);
    EXPECT_EQ(r.failed_ops, serial.failed_ops);
    EXPECT_EQ(r.lane_steps, serial.lane_steps);
    EXPECT_EQ(r.virtual_end, serial.virtual_end);
    EXPECT_EQ(r.degraded_fetches, serial.degraded_fetches);
    EXPECT_EQ(r.fault_rejections, serial.fault_rejections);
    EXPECT_EQ(r.fault_retries, serial.fault_retries);
    EXPECT_EQ(r.injected.cxl_failures, serial.injected.cxl_failures);
    EXPECT_EQ(r.injected.nic_failures, serial.injected.nic_failures);
    EXPECT_EQ(r.injected.disk_stalls, serial.injected.disk_stalls);
  }
}

// Raw-executor cross-group control deferral: a lane that parks/resumes a
// lane of ANOTHER group mid-step defers the effect to the epoch barrier
// (applied in {step_start, lane, seq} order), so the victim's trajectory is
// identical at every thread count; external park/resume stays immediate.
TEST(ParallelWorldTest, CrossGroupParkResumeIsDeferredDeterministically) {
  struct Observation {
    uint64_t victim_steps = 0;
    Nanos victim_end = 0;
    Nanos largest_jump = 0;  // resume-at target shows up as a clock jump
  };
  auto run = [](uint32_t threads) {
    sim::Executor ex;
    Observation obs;
    uint32_t victim = 0;
    Nanos last = 0;
    // Victim in group/node 2: fine-grained stepper.
    victim = ex.AddLane(
        [&](sim::ExecContext& ctx) {
          obs.victim_steps++;
          if (ctx.now - last > obs.largest_jump) {
            obs.largest_jump = ctx.now - last;
          }
          last = ctx.now;
          ctx.Advance(100);
          return true;
        },
        2, nullptr, 0);
    // Controller in group/node 1: parks the victim at its third step and
    // resumes it far in the future three steps later — both cross-group,
    // both deferred to the barrier.
    int steps = 0;
    ex.AddLane(
        [&, victim](sim::ExecContext& ctx) {
          steps++;
          if (steps == 3) ex.ParkLane(victim);
          if (steps == 6) ex.ResumeLane(victim, 200000);
          ctx.Advance(1000);
          return true;
        },
        1, nullptr, 0);
    ex.EnableEpochParallel(threads);
    ex.RunUntil(300000);
    obs.victim_end = ex.context(victim).now;
    // External (main-thread) park takes effect immediately even on an
    // epoch-parallel executor.
    ex.ParkLane(victim);
    ex.RunUntil(400000);
    EXPECT_EQ(ex.context(victim).now, obs.victim_end);
    return obs;
  };
  const Observation base = run(1);
  EXPECT_GE(base.victim_end, 300000);
  // The resume target is visible as a virtual-time jump across the parked
  // span (park applies at an epoch barrier before 200000).
  EXPECT_GE(base.largest_jump, 100000);
  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    const Observation r = run(threads);
    EXPECT_EQ(r.victim_steps, base.victim_steps);
    EXPECT_EQ(r.victim_end, base.victim_end);
    EXPECT_EQ(r.largest_jump, base.largest_jump);
  }
}

}  // namespace
}  // namespace polarcxl::harness
