// Tests for the workload generators: sysbench (all ops + sharing
// adaptation), TPC-C (mix, remote accesses, consistency), TATP (mix,
// partitioning).
#include <gtest/gtest.h>

#include <memory>

#include "engine/database.h"
#include "workload/sysbench.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"

namespace polarcxl::workload {
namespace {

using engine::BufferPoolKind;
using engine::Database;
using sim::ExecContext;

struct WorkloadEnv {
  WorkloadEnv() : disk("disk"), store(&disk), log(&disk) {}

  std::unique_ptr<Database> MakeDb(uint64_t pool_pages = 16384) {
    engine::DatabaseEnv env;
    env.store = &store;
    env.log = &log;
    engine::DatabaseOptions opt;
    opt.pool_kind = BufferPoolKind::kDram;
    opt.pool_pages = pool_pages;
    ExecContext ctx;
    auto db = Database::Create(ctx, env, opt);
    POLAR_CHECK(db.ok());
    return std::move(*db);
  }

  storage::SimDisk disk;
  storage::PageStore store;
  storage::RedoLog log;
};

SysbenchConfig SmallSysbench() {
  SysbenchConfig c;
  c.tables = 2;
  c.rows_per_table = 2000;
  return c;
}

TEST(SysbenchTest, LoadCreatesTablesWithRows) {
  WorkloadEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  const SysbenchConfig c = SmallSysbench();
  ASSERT_TRUE(LoadSysbenchTables(ctx, db.get(), c).ok());
  ASSERT_EQ(db->num_tables(), 2u);
  for (size_t t = 0; t < 2; t++) {
    auto count = db->table(t)->tree()->CountAll(ctx);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, c.rows_per_table);
  }
}

TEST(SysbenchTest, EventQueryCountsMatchMix) {
  WorkloadEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  const SysbenchConfig c = SmallSysbench();
  ASSERT_TRUE(LoadSysbenchTables(ctx, db.get(), c).ok());
  SysbenchWorkload wl(db.get(), c, 0, 1);
  EXPECT_EQ(wl.RunEvent(ctx, SysbenchOp::kPointSelect), 1u);
  EXPECT_EQ(wl.RunEvent(ctx, SysbenchOp::kRangeSelect), 1u);
  EXPECT_EQ(wl.RunEvent(ctx, SysbenchOp::kReadOnly), 11u);
  EXPECT_EQ(wl.RunEvent(ctx, SysbenchOp::kReadWrite), 15u);
  EXPECT_EQ(wl.RunEvent(ctx, SysbenchOp::kWriteOnly), 4u);
  EXPECT_EQ(wl.RunEvent(ctx, SysbenchOp::kPointUpdate), 10u);
}

TEST(SysbenchTest, ReadWritePreservesRowCount) {
  WorkloadEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  const SysbenchConfig c = SmallSysbench();
  ASSERT_TRUE(LoadSysbenchTables(ctx, db.get(), c).ok());
  SysbenchWorkload wl(db.get(), c, 0, 2);
  for (int i = 0; i < 300; i++) wl.RunEvent(ctx, SysbenchOp::kReadWrite);
  uint64_t total = 0;
  for (size_t t = 0; t < 2; t++) {
    auto count = db->table(t)->tree()->CountAll(ctx);
    ASSERT_TRUE(count.ok());
    total += *count;
  }
  // delete+insert pairs keep the row population stable.
  EXPECT_EQ(total, 2ull * c.rows_per_table);
}

TEST(SysbenchTest, EventsAdvanceVirtualTime) {
  WorkloadEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  const SysbenchConfig c = SmallSysbench();
  ASSERT_TRUE(LoadSysbenchTables(ctx, db.get(), c).ok());
  SysbenchWorkload wl(db.get(), c, 0, 3);
  const Nanos before = ctx.now;
  wl.RunEvent(ctx, SysbenchOp::kPointSelect);
  // At least the base CPU cost must be charged.
  EXPECT_GE(ctx.now - before, db->costs().point_query_base);
}

TEST(SysbenchTest, SharedFractionIsRespected) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  SysbenchConfig c;
  c.tables = 1;
  c.rows_per_table = 500;
  c.num_nodes = 4;          // 5 groups x 1 table
  c.shared_fraction = 0.4;
  ASSERT_TRUE(LoadSysbenchTables(ctx, db.get(), c).ok());
  ASSERT_EQ(db->num_tables(), 5u);

  SysbenchWorkload wl(db.get(), c, /*node=*/2, 7);
  for (int i = 0; i < 2000; i++) wl.RunEvent(ctx, SysbenchOp::kPointSelect);
  const double frac = static_cast<double>(wl.shared_queries()) /
                      static_cast<double>(wl.total_queries());
  EXPECT_NEAR(frac, 0.4, 0.05);
}

TEST(SysbenchTest, ClientNetworkCharged) {
  WorkloadEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  const SysbenchConfig c = SmallSysbench();
  ASSERT_TRUE(LoadSysbenchTables(ctx, db.get(), c).ok());
  sim::BandwidthChannel client("client", 12ULL * 1000 * 1000 * 1000);
  SysbenchWorkload wl(db.get(), c, 0, 4, &client);
  wl.RunEvent(ctx, SysbenchOp::kRangeSelect);
  // 100 rows x 184 B ~ 18 KB crossed the client network.
  EXPECT_GT(client.total_bytes(), 100u * 150);
}

TEST(SysbenchTest, ZipfianDistributionSkewsRows) {
  WorkloadEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  SysbenchConfig c = SmallSysbench();
  c.distribution = KeyDistribution::kZipfian;
  c.zipf_theta = 0.99;
  ASSERT_TRUE(LoadSysbenchTables(ctx, db.get(), c).ok());
  SysbenchWorkload wl(db.get(), c, 0, 5);
  // With strong skew, updates concentrate on few rows: the k column of the
  // hottest row changes many times. Indirect check: run many point updates
  // and verify the pool hit rate is near-perfect (hot set tiny).
  db->pool()->ResetStats();
  for (int i = 0; i < 500; i++) wl.RunEvent(ctx, SysbenchOp::kPointUpdate);
  EXPECT_GT(db->pool()->stats().HitRate(), 0.99);
}

// ---------- TPC-C ----------

TEST(TpccTest, LoadPopulatesAllTables) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  TpccConfig c;
  c.warehouses = 2;
  c.customers_per_district = 30;
  c.items = 200;
  ASSERT_TRUE(LoadTpccTables(ctx, db.get(), c).ok());
  ASSERT_EQ(db->num_tables(), TpccTables::kCount);
  EXPECT_EQ(*db->table(TpccTables::kWarehouse)->tree()->CountAll(ctx), 2u);
  EXPECT_EQ(*db->table(TpccTables::kDistrict)->tree()->CountAll(ctx), 20u);
  EXPECT_EQ(*db->table(TpccTables::kCustomer)->tree()->CountAll(ctx),
            2u * 10 * 30);
  EXPECT_EQ(*db->table(TpccTables::kStock)->tree()->CountAll(ctx), 2u * 200);
  EXPECT_EQ(*db->table(TpccTables::kItem)->tree()->CountAll(ctx), 200u);
}

TEST(TpccTest, MixApproximatesStandard) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  TpccConfig c;
  c.warehouses = 2;
  c.customers_per_district = 30;
  c.items = 200;
  ASSERT_TRUE(LoadTpccTables(ctx, db.get(), c).ok());
  TpccWorkload wl(db.get(), c, 0, 11);
  uint32_t new_orders = 0;
  for (int i = 0; i < 1000; i++) new_orders += wl.RunTransaction(ctx);
  EXPECT_NEAR(new_orders / 1000.0, 0.45, 0.05);
  EXPECT_NEAR(wl.stats().payments / 1000.0, 0.43, 0.05);
  EXPECT_GT(wl.stats().order_status, 0u);
  EXPECT_GT(wl.stats().deliveries, 0u);
  EXPECT_GT(wl.stats().stock_levels, 0u);
  EXPECT_EQ(wl.stats().total(), 1000u);
}

TEST(TpccTest, RemoteWarehouseAccessesAreRare) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  TpccConfig c;
  c.warehouses = 4;
  c.num_nodes = 2;
  c.customers_per_district = 30;
  c.items = 200;
  ASSERT_TRUE(LoadTpccTables(ctx, db.get(), c).ok());
  TpccWorkload wl(db.get(), c, 0, 12);
  for (int i = 0; i < 1000; i++) wl.RunTransaction(ctx);
  // ~10% of NO transactions + ~15% of payments touch a remote warehouse.
  EXPECT_GT(wl.stats().remote_accesses, 20u);
  EXPECT_LT(wl.stats().remote_accesses, 300u);
}

TEST(TpccTest, NewOrdersGrowOrderTables) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  TpccConfig c;
  c.warehouses = 1;
  c.customers_per_district = 30;
  c.items = 200;
  ASSERT_TRUE(LoadTpccTables(ctx, db.get(), c).ok());
  TpccWorkload wl(db.get(), c, 0, 13);
  const uint64_t orders_before =
      *db->table(TpccTables::kOrder)->tree()->CountAll(ctx);
  const uint64_t lines_before =
      *db->table(TpccTables::kOrderLine)->tree()->CountAll(ctx);
  for (int i = 0; i < 400; i++) wl.RunTransaction(ctx);
  EXPECT_EQ(*db->table(TpccTables::kOrder)->tree()->CountAll(ctx),
            orders_before + wl.stats().new_orders);
  EXPECT_GT(*db->table(TpccTables::kOrderLine)->tree()->CountAll(ctx),
            lines_before + wl.stats().new_orders * 4);
}

// ---------- TATP ----------

TEST(TatpTest, LoadPopulatesSubscriberHierarchy) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  TatpConfig c;
  c.subscribers = 500;
  ASSERT_TRUE(LoadTatpTables(ctx, db.get(), c).ok());
  EXPECT_EQ(*db->table(TatpTables::kSubscriber)->tree()->CountAll(ctx), 500u);
  const uint64_t ai = *db->table(TatpTables::kAccessInfo)->tree()->CountAll(ctx);
  EXPECT_GE(ai, 500u);
  EXPECT_LE(ai, 2000u);
}

TEST(TatpTest, MixIsReadMostly) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  TatpConfig c;
  c.subscribers = 500;
  ASSERT_TRUE(LoadTatpTables(ctx, db.get(), c).ok());
  TatpWorkload wl(db.get(), c, 0, 21);
  for (int i = 0; i < 1000; i++) wl.RunTransaction(ctx);
  const double read_frac = static_cast<double>(wl.stats().reads) /
                           static_cast<double>(wl.stats().total());
  EXPECT_NEAR(read_frac, 0.8, 0.05);
}

TEST(TatpTest, SubscribersPartitionedAcrossNodes) {
  WorkloadEnv env;
  auto db = env.MakeDb(32768);
  ExecContext ctx;
  TatpConfig c;
  c.subscribers = 400;
  c.num_nodes = 4;
  ASSERT_TRUE(LoadTatpTables(ctx, db.get(), c).ok());
  // Node 3's transactions must all succeed on its own subscriber range,
  // proving the partitioning stays in bounds.
  TatpWorkload wl(db.get(), c, 3, 22);
  for (int i = 0; i < 500; i++) wl.RunTransaction(ctx);
  EXPECT_GT(wl.stats().total(), 0u);
}

}  // namespace
}  // namespace polarcxl::workload
