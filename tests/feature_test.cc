// Tests for the extension features: multi-pool clusters (paper Figure 5),
// group commit, the storage IOPS ceiling, and time attribution.
#include <gtest/gtest.h>

#include "cxl/cxl_cluster.h"
#include "engine/database.h"
#include "harness/instance_driver.h"

namespace polarcxl {
namespace {

using sim::ExecContext;

// ---------- CxlCluster ----------

TEST(CxlClusterTest, PoolsAreIndependent) {
  cxl::CxlCluster::Options o;
  o.num_pools = 2;
  o.device_bytes_per_pool = 32 << 20;
  cxl::CxlCluster cluster(o);
  EXPECT_EQ(cluster.num_pools(), 2u);
  EXPECT_EQ(cluster.capacity(), 64u << 20);

  auto host = cluster.AttachHost(0);
  ASSERT_TRUE(host.ok());
  // Writes through pool-0's accessor are invisible to pool 1 (distinct
  // fabrics).
  ExecContext ctx;
  const uint64_t v = 0xABCD;
  cluster.accessor(*host, 0)->StorePod(ctx, 0, v);
  EXPECT_EQ(cluster.accessor(*host, 0)->LoadPod<uint64_t>(ctx, 0), v);
  EXPECT_NE(cluster.accessor(*host, 1)->LoadPod<uint64_t>(ctx, 0), v);
}

TEST(CxlClusterTest, PlacementBalancesPools) {
  cxl::CxlCluster::Options o;
  o.num_pools = 3;
  o.device_bytes_per_pool = 16 << 20;
  cxl::CxlCluster cluster(o);
  ExecContext ctx;
  uint32_t used[3] = {0, 0, 0};
  for (NodeId t = 0; t < 9; t++) {
    auto placement = cluster.Allocate(ctx, t, 4 << 20);
    ASSERT_TRUE(placement.ok());
    used[placement->pool]++;
  }
  // Least-loaded placement spreads 9 equal tenants 3/3/3.
  EXPECT_EQ(used[0], 3u);
  EXPECT_EQ(used[1], 3u);
  EXPECT_EQ(used[2], 3u);
}

TEST(CxlClusterTest, ClusterSurvivesPoolExhaustion) {
  cxl::CxlCluster::Options o;
  o.num_pools = 2;
  o.device_bytes_per_pool = 8 << 20;
  cxl::CxlCluster cluster(o);
  ExecContext ctx;
  // Fill both pools.
  ASSERT_TRUE(cluster.Allocate(ctx, 1, 8 << 20).ok());
  ASSERT_TRUE(cluster.Allocate(ctx, 2, 8 << 20).ok());
  auto r = cluster.Allocate(ctx, 3, 1 << 20);
  EXPECT_TRUE(r.status().IsOutOfMemory());
  EXPECT_EQ(cluster.free_bytes(), 0u);
}

// ---------- group commit ----------

TEST(GroupCommitTest, ZeroWindowIsPlainFlush) {
  storage::SimDisk disk("d");
  storage::RedoLog log(&disk);
  std::vector<storage::RedoRecord> recs(1);
  recs[0].page_id = 1;
  recs[0].len = 4;
  recs[0].data = {1, 2, 3, 4};
  recs[0].mtr_id = log.NewMtrId();
  log.AppendMtr(std::move(recs));
  ExecContext ctx;
  log.GroupCommit(ctx, 0);
  EXPECT_EQ(log.flushed_lsn(), log.current_lsn());
  EXPECT_EQ(disk.write_ops(), 1u);
}

TEST(GroupCommitTest, InFlightCommitsShareOneIo) {
  storage::SimDisk disk("d");
  storage::RedoLog log(&disk);
  auto append = [&] {
    std::vector<storage::RedoRecord> recs(1);
    recs[0].page_id = 1;
    recs[0].len = 4;
    recs[0].data = {1, 2, 3, 4};
    recs[0].mtr_id = log.NewMtrId();
    log.AppendMtr(std::move(recs));
  };

  // Leader at t=0 lingers 20 us and flushes (completes ~70 us).
  append();
  ExecContext leader;
  log.GroupCommit(leader, Micros(20));
  EXPECT_EQ(disk.write_ops(), 1u);
  const Nanos completion = leader.now;
  EXPECT_GE(completion, Micros(70));

  // A follower whose commit lands inside the in-flight window rides along:
  // durable, same completion time, still one I/O.
  append();
  ExecContext follower;
  follower.now = Micros(30);
  log.GroupCommit(follower, Micros(20));
  EXPECT_EQ(disk.write_ops(), 1u);
  EXPECT_EQ(follower.now, completion);
  EXPECT_EQ(log.flushed_lsn(), log.current_lsn());

  // A commit after the batch completes leads a fresh one.
  append();
  ExecContext late;
  late.now = completion + Micros(1);
  log.GroupCommit(late, Micros(20));
  EXPECT_EQ(disk.write_ops(), 2u);
}

TEST(GroupCommitTest, EmptyBufferIsFree) {
  storage::SimDisk disk("d");
  storage::RedoLog log(&disk);
  ExecContext ctx;
  log.GroupCommit(ctx, Micros(20));
  EXPECT_EQ(disk.write_ops(), 0u);
  EXPECT_EQ(ctx.now, 0);
}

// ---------- storage IOPS ceiling ----------

TEST(DiskIopsTest, OperationRateIsCapped) {
  storage::SimDisk::Options o;
  o.iops = 10000;  // 10K ops/s
  o.write_latency = 1000;
  storage::SimDisk disk("d", o);
  // 5000 tiny writes offered at t~0 must stretch to ~0.5 s.
  Nanos last = 0;
  for (int i = 0; i < 5000; i++) {
    ExecContext ctx;
    disk.Write(ctx, 64);
    last = std::max(last, ctx.now);
  }
  EXPECT_GT(last, Millis(400));
}

TEST(DiskIopsTest, UnlimitedByDefault) {
  storage::SimDisk disk("d");
  Nanos last = 0;
  for (int i = 0; i < 5000; i++) {
    ExecContext ctx;
    disk.Write(ctx, 64);
    last = std::max(last, ctx.now);
  }
  EXPECT_LT(last, Millis(1));  // latency only, no op queueing
}

// ---------- time attribution ----------

TEST(TimeAttributionTest, BucketsNeverExceedTotal) {
  harness::PoolingConfig c;
  c.kind = engine::BufferPoolKind::kTieredRdma;
  c.instances = 2;
  c.lanes_per_instance = 3;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(20);
  c.measure = Millis(60);
  harness::PoolingResult r = harness::RunPooling(c);
  const auto& b = r.breakdown;
  EXPECT_GT(b.total, 0);
  EXPECT_GE(b.Cpu(), 0);  // components never exceed wall time
  EXPECT_GT(b.net, 0);    // the tiered pool must show network time
  EXPECT_NEAR(b.Pct(b.Cpu()) + b.Pct(b.mem) + b.Pct(b.io) + b.Pct(b.net) +
                  b.Pct(b.lock),
              1.0, 1e-9);
}

TEST(TimeAttributionTest, CxlPoolingShowsMemoryNotNetwork) {
  harness::PoolingConfig c;
  c.kind = engine::BufferPoolKind::kCxl;
  c.instances = 2;
  c.lanes_per_instance = 3;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.cpu_cache_bytes = 1ULL << 20;
  c.warmup = Millis(20);
  c.measure = Millis(60);
  harness::PoolingResult r = harness::RunPooling(c);
  EXPECT_EQ(r.breakdown.net, 0);
  EXPECT_GT(r.breakdown.mem, 0);
}

}  // namespace
}  // namespace polarcxl
