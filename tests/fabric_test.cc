// The fabric topology subsystem: deterministic multi-switch routing, HDM
// interleave decoding, placement policy, and their integration into the
// pooling world. The bit-identity tests at the bottom pin the single-switch
// default to the historical lane_steps — the topology layer must be
// invisible until a world opts in.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "cxl/cxl_fabric.h"
#include "cxl/cxl_memory_manager.h"
#include "fabric/fabric_topology.h"
#include "fabric/hdm_decoder.h"
#include "fabric/placement_policy.h"
#include "harness/instance_driver.h"

namespace polarcxl {
namespace {

using fabric::FabricTopology;
using fabric::HdmDecoder;
using fabric::InterleaveMode;
using fabric::InterleaveSpec;
using fabric::PlacementMode;
using fabric::PlacementPolicy;
using fabric::TopologySpec;

// ---------------------------------------------------------------------------
// Routing oracles
// ---------------------------------------------------------------------------

TEST(FabricTopologyTest, ChainRoutesChargeEveryCrossedHop) {
  cxl::CxlSwitch::Options sw;  // traversal_latency = 284
  FabricTopology topo(TopologySpec::Chain(3, sw, 56ULL * 1000 * 1000 * 1000,
                                          /*uplink_latency=*/100));
  ASSERT_EQ(topo.num_switches(), 3u);
  ASSERT_EQ(topo.num_uplinks(), 2u);

  EXPECT_EQ(topo.hops(0, 0), 0u);
  EXPECT_EQ(topo.hops(0, 1), 1u);
  EXPECT_EQ(topo.hops(0, 2), 2u);
  EXPECT_EQ(topo.hops(2, 0), 2u);
  EXPECT_EQ(topo.Path(0, 2), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(topo.Path(2, 0), (std::vector<uint32_t>{2, 1, 0}));

  // Zero-hop route: no channels, no latency.
  sim::RouteCost local;
  topo.AppendRouteCost(1, 1, &local);
  EXPECT_EQ(local.num_channels, 0u);
  EXPECT_EQ(local.extra_latency, 0);

  // 0 -> 2 crosses uplink0, enters sw1, crosses uplink1, enters sw2. Each
  // hop pays the uplink's propagation plus the entered switch's traversal.
  sim::RouteCost rc;
  topo.AppendRouteCost(0, 2, &rc);
  ASSERT_EQ(rc.num_channels, 4u);
  EXPECT_EQ(rc.channels[0], topo.uplink(0));
  EXPECT_EQ(rc.channels[1], topo.sw(1).fabric_channel());
  EXPECT_EQ(rc.channels[2], topo.uplink(1));
  EXPECT_EQ(rc.channels[3], topo.sw(2).fabric_channel());
  EXPECT_EQ(rc.extra_latency, 2 * (100 + 284));

  // The reverse route crosses the same links in the opposite order but
  // enters sw1 then sw0.
  sim::RouteCost back;
  topo.AppendRouteCost(2, 0, &back);
  ASSERT_EQ(back.num_channels, 4u);
  EXPECT_EQ(back.channels[0], topo.uplink(1));
  EXPECT_EQ(back.channels[1], topo.sw(1).fabric_channel());
  EXPECT_EQ(back.channels[2], topo.uplink(0));
  EXPECT_EQ(back.channels[3], topo.sw(0).fabric_channel());
}

TEST(FabricTopologyTest, RingTieBreaksThroughLowestIndexNeighbor) {
  FabricTopology topo(TopologySpec::Ring(4));
  ASSERT_EQ(topo.num_uplinks(), 4u);
  // 0 -> 2 has two equal 2-hop routes (via 1 or via 3); the deterministic
  // choice is the lowest-index neighbor.
  EXPECT_EQ(topo.hops(0, 2), 2u);
  EXPECT_EQ(topo.Path(0, 2), (std::vector<uint32_t>{0, 1, 2}));
  // Same the other way: 2's neighbors are 1 and 3, lowest wins.
  EXPECT_EQ(topo.Path(2, 0), (std::vector<uint32_t>{2, 1, 0}));
  EXPECT_EQ(topo.hops(3, 0), 1u);  // the closing 3-0 link exists
}

TEST(FabricTopologyTest, TwoSwitchRingHasOneUplink) {
  FabricTopology topo(TopologySpec::Ring(2));
  EXPECT_EQ(topo.num_uplinks(), 1u);
  EXPECT_EQ(topo.hops(0, 1), 1u);
  EXPECT_EQ(topo.hops(1, 0), 1u);
}

// ---------------------------------------------------------------------------
// HDM decoder
// ---------------------------------------------------------------------------

/// Every fabric byte must map to exactly one (device, offset) and back.
void CheckBijection(const HdmDecoder& dec,
                    const std::vector<uint64_t>& caps) {
  std::vector<std::vector<uint8_t>> seen(caps.size());
  for (size_t d = 0; d < caps.size(); d++) seen[d].assign(caps[d], 0);
  // Walk in decoder-reported contiguous runs; each run must stay on one
  // device with consecutive device offsets.
  MemOffset off = 0;
  while (off < dec.capacity()) {
    const uint64_t run = dec.ContiguousAt(off);
    ASSERT_GT(run, 0u);
    const HdmDecoder::Target head = dec.Decode(off);
    for (uint64_t i = 0; i < run; i += 64) {  // line-granular sampling
      const HdmDecoder::Target t = dec.Decode(off + i);
      ASSERT_EQ(t.device, head.device);
      ASSERT_EQ(t.offset, head.offset + i);
      ASSERT_LT(t.offset, caps[t.device]);
      ASSERT_EQ(seen[t.device][t.offset], 0) << "double-mapped byte";
      seen[t.device][t.offset] = 1;
      ASSERT_EQ(dec.Encode(t.device, t.offset), off + i) << "Encode != inv";
    }
    off += run;
  }
  // Line-granular sampling still covers every 64th byte of every device.
  for (size_t d = 0; d < caps.size(); d++) {
    uint64_t covered = 0;
    for (uint64_t b = 0; b < caps[d]; b += 64) covered += seen[d][b];
    EXPECT_EQ(covered, caps[d] / 64) << "device " << d;
  }
}

TEST(HdmDecoderTest, AllModesAreBijections) {
  const std::vector<uint64_t> caps = {16384, 16384, 16384, 16384};
  const std::vector<uint32_t> one_group = {0, 0, 0, 0};
  const std::vector<uint32_t> two_groups = {0, 0, 1, 1};
  for (InterleaveMode mode :
       {InterleaveMode::kContiguous, InterleaveMode::kRoundRobin,
        InterleaveMode::kSkewed}) {
    for (uint64_t granule : {256ULL, 4096ULL}) {
      for (const auto& groups : {one_group, two_groups}) {
        InterleaveSpec spec;
        spec.mode = mode;
        spec.granule = granule;
        HdmDecoder dec(caps, groups, spec);
        SCOPED_TRACE(::testing::Message()
                     << InterleaveModeName(mode) << " granule=" << granule
                     << " groups=" << (groups == one_group ? 1 : 2));
        ASSERT_EQ(dec.capacity(), 4 * 16384u);
        CheckBijection(dec, caps);
      }
    }
  }
}

TEST(HdmDecoderTest, ContiguousModeMatchesLegacyLayout) {
  // One group, contiguous: device d starts at sum of previous capacities —
  // the historical back-to-back CxlFabric map.
  const std::vector<uint64_t> caps = {32768, 16384, 65536};
  HdmDecoder dec(caps, {0, 0, 0}, InterleaveSpec{});
  EXPECT_EQ(dec.Decode(0).device, 0u);
  EXPECT_EQ(dec.Decode(32767).device, 0u);
  EXPECT_EQ(dec.Decode(32768).device, 1u);
  EXPECT_EQ(dec.Decode(32768).offset, 0u);
  EXPECT_EQ(dec.Decode(32768 + 16384).device, 2u);
  EXPECT_EQ(dec.ContiguousAt(0), 32768u);
  EXPECT_EQ(dec.ContiguousAt(40000), 32768 + 16384 - 40000u);
}

TEST(HdmDecoderTest, RoundRobinRotatesAcrossDevices) {
  InterleaveSpec spec;
  spec.mode = InterleaveMode::kRoundRobin;
  spec.granule = 256;
  HdmDecoder dec({4096, 4096}, {0, 0}, spec);
  // Stripes alternate 0,1,0,1...; skew would shift each row.
  for (uint32_t s = 0; s < 16; s++) {
    EXPECT_EQ(dec.Decode(s * 256).device, s % 2) << s;
  }
  EXPECT_EQ(dec.ContiguousAt(100), 156u);  // to the stripe boundary
}

TEST(HdmDecoderTest, SkewShiftsLanePerRow) {
  InterleaveSpec spec;
  spec.mode = InterleaveMode::kSkewed;
  spec.granule = 256;
  HdmDecoder dec({4096, 4096, 4096, 4096}, {0, 0, 0, 0}, spec);
  // Row r of 4 ways starts on device r % 4 — a page-strided walker that
  // would hammer one device under plain round robin touches all four.
  for (uint32_t row = 0; row < 4; row++) {
    const MemOffset row_base = static_cast<MemOffset>(row) * 4 * 256;
    EXPECT_EQ(dec.Decode(row_base).device, row % 4) << row;
  }
}

TEST(HdmDecoderTest, GroupsOccupyDisjointRanges) {
  InterleaveSpec spec;
  spec.mode = InterleaveMode::kRoundRobin;
  spec.granule = 4096;
  HdmDecoder dec({16384, 16384, 16384, 16384}, {0, 0, 1, 1}, spec);
  ASSERT_EQ(dec.groups().size(), 2u);
  EXPECT_EQ(dec.groups()[0].base, 0u);
  EXPECT_EQ(dec.groups()[0].size, 32768u);
  EXPECT_EQ(dec.groups()[1].base, 32768u);
  EXPECT_EQ(dec.groups()[1].size, 32768u);
  // Group 0's range only ever decodes to devices 0/1, group 1's to 2/3.
  for (MemOffset off = 0; off < dec.capacity(); off += 4096) {
    const uint32_t dev = dec.DeviceOf(off);
    EXPECT_EQ(dev / 2, off < 32768 ? 0u : 1u) << off;
  }
}

TEST(CxlFabricTest, InterleavedFabricCopiesRoundTrip) {
  cxl::CxlFabric::Options o;
  o.topology = TopologySpec::Ring(2);
  o.interleave.mode = InterleaveMode::kRoundRobin;
  o.interleave.granule = 4096;
  cxl::CxlFabric fab(std::move(o));
  for (uint32_t s = 0; s < 2; s++) {
    ASSERT_TRUE(fab.AddDevice(64 * 1024, s).ok());
    ASSERT_TRUE(fab.AddDevice(64 * 1024, s).ok());
  }
  ASSERT_EQ(fab.capacity(), 4 * 64 * 1024u);
  EXPECT_TRUE(fab.routing_enabled());

  // Pattern that crosses many stripe boundaries; CopyIn/CopyOut must be
  // byte-exact across the interleaved layout.
  std::vector<uint8_t> in(fab.capacity());
  for (size_t i = 0; i < in.size(); i++) {
    in[i] = static_cast<uint8_t>(i * 2654435761u >> 13);
  }
  fab.CopyIn(0, in.data(), in.size());
  std::vector<uint8_t> out(fab.capacity());
  fab.CopyOut(0, out.data(), out.size());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);

  // Translate agrees with the decoder at stripe heads.
  for (MemOffset off = 0; off < fab.capacity(); off += 4096) {
    EXPECT_EQ(*fab.Translate(off), in[off]) << off;
  }
}

// ---------------------------------------------------------------------------
// Placement policy + manager
// ---------------------------------------------------------------------------

TEST(PlacementPolicyTest, OrdersAreDeterministicPerMode) {
  PlacementPolicy::GroupView views[3];
  views[0] = {1000, 2};  // free_bytes, hops_from_home
  views[1] = {3000, 0};
  views[2] = {2000, 1};
  uint32_t order[3];

  PlacementPolicy(PlacementMode::kLocalFirst).Order(1, 7, views, 3, order);
  EXPECT_EQ(order[0], 1u);  // home first
  EXPECT_EQ(order[1], 2u);  // then by hops
  EXPECT_EQ(order[2], 0u);

  PlacementPolicy(PlacementMode::kSpread).Order(1, 7, views, 3, order);
  EXPECT_EQ(order[0], 7 % 3);  // rotation by tenant id
  EXPECT_EQ(order[1], (7 + 1) % 3);
  EXPECT_EQ(order[2], (7 + 2) % 3);

  PlacementPolicy(PlacementMode::kCapacityBalanced)
      .Order(1, 7, views, 3, order);
  EXPECT_EQ(order[0], 1u);  // most free bytes first
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(CxlMemoryManagerTest, LocalFirstPlacementAnchorsToTenantHome) {
  FabricTopology topo(TopologySpec::Ring(2));
  cxl::CxlMemoryManager mgr(4 * kPageSize * 16);
  mgr.ConfigurePlacement({{0, 2 * kPageSize * 16, 0},
                          {2 * kPageSize * 16, 2 * kPageSize * 16, 1}},
                         PlacementMode::kLocalFirst, &topo);
  mgr.SetTenantHome(1, 0);
  mgr.SetTenantHome(2, 1);

  sim::ExecContext ctx;
  auto a = mgr.Allocate(ctx, 1, kPageSize);
  auto b = mgr.Allocate(ctx, 2, kPageSize);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(*a, 2 * kPageSize * 16u);   // group 0
  EXPECT_GE(*b, 2 * kPageSize * 16u);   // group 1

  // Exhaust tenant 1's home group: the policy spills to the next-nearest.
  auto big = mgr.Allocate(ctx, 1, 2 * kPageSize * 15);
  ASSERT_TRUE(big.ok());
  auto spill = mgr.Allocate(ctx, 1, 2 * kPageSize * 8);
  ASSERT_TRUE(spill.ok());
  EXPECT_GE(*spill, 2 * kPageSize * 16u);
}

TEST(CxlMemoryManagerTest, ReleaseCoalescesFreeSpans) {
  cxl::CxlMemoryManager mgr(16 * kPageSize);
  sim::ExecContext ctx;
  auto a = mgr.Allocate(ctx, 1, kPageSize);
  auto b = mgr.Allocate(ctx, 1, kPageSize);
  auto c = mgr.Allocate(ctx, 1, kPageSize);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(mgr.num_free_spans(), 1u);  // the tail
  EXPECT_DOUBLE_EQ(mgr.fragmentation(), 0.0);

  // Freeing the middle region leaves a hole.
  ASSERT_TRUE(mgr.Release(ctx, 1, *b).ok());
  EXPECT_EQ(mgr.num_free_spans(), 2u);
  EXPECT_GT(mgr.fragmentation(), 0.0);

  // Freeing its neighbors merges everything back into one maximal span.
  ASSERT_TRUE(mgr.Release(ctx, 1, *a).ok());
  ASSERT_TRUE(mgr.Release(ctx, 1, *c).ok());
  EXPECT_EQ(mgr.num_free_spans(), 1u);
  EXPECT_DOUBLE_EQ(mgr.fragmentation(), 0.0);
  EXPECT_EQ(mgr.allocated(), 0u);

  // The coalesced span serves a full-capacity request — churn did not
  // shatter the space.
  auto all = mgr.Allocate(ctx, 1, 16 * kPageSize);
  EXPECT_TRUE(all.ok());
}

TEST(CxlMemoryManagerTest, SpansNeverMergeAcrossGroupBoundaries) {
  cxl::CxlMemoryManager mgr(4 * kPageSize);
  mgr.ConfigurePlacement(
      {{0, 2 * kPageSize, 0}, {2 * kPageSize, 2 * kPageSize, 1}},
      PlacementMode::kLocalFirst);
  EXPECT_EQ(mgr.num_free_spans(), 2u);  // one per group, touching but apart
  sim::ExecContext ctx;
  mgr.SetTenantHome(1, 0);
  mgr.SetTenantHome(2, 1);
  auto a = mgr.Allocate(ctx, 1, 2 * kPageSize);  // fills group 0
  auto b = mgr.Allocate(ctx, 2, 2 * kPageSize);  // fills group 1
  ASSERT_TRUE(a.ok() && b.ok());
  mgr.ReleaseAll(ctx, 1);
  mgr.ReleaseAll(ctx, 2);
  EXPECT_EQ(mgr.num_free_spans(), 2u);  // still two: no cross-group merge
}

TEST(CxlSwitchTest, PortExhaustionNamesSwitchAndLanes) {
  cxl::CxlSwitch::Options o;
  o.total_lanes = 32;
  o.lanes_per_port = 16;
  cxl::CxlSwitch sw("edge-sw", o);
  ASSERT_TRUE(sw.BindPort(cxl::CxlSwitch::PortKind::kDevice).ok());
  ASSERT_TRUE(sw.BindPort(cxl::CxlSwitch::PortKind::kHost).ok());
  EXPECT_EQ(sw.ports_bound(), 2u);
  EXPECT_EQ(sw.ports_bound(cxl::CxlSwitch::PortKind::kHost), 1u);
  EXPECT_EQ(sw.lanes_in_use(), 32u);

  auto fail = sw.BindPort(cxl::CxlSwitch::PortKind::kHost);
  ASSERT_FALSE(fail.ok());
  const std::string msg = fail.status().message();
  EXPECT_NE(msg.find("edge-sw"), std::string::npos) << msg;
  EXPECT_NE(msg.find("32/32"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// World integration: bit-identity + multi-switch determinism
// ---------------------------------------------------------------------------

harness::PoolingConfig MultiSwitchPooling(int world_threads) {
  harness::PoolingConfig c = harness::Fig7PoolingConfig(
      engine::BufferPoolKind::kCxl);
  c.instances = 4;
  c.lanes_per_instance = 2;
  c.sysbench.tables = 1;
  c.sysbench.rows_per_table = 1500;
  c.warmup = Millis(10);
  c.measure = Millis(30);
  // Small enough that the working set spills out of the LLC: placement and
  // routing only matter when accesses actually reach the fabric.
  c.cpu_cache_bytes = 256ULL << 10;
  c.world_threads = world_threads;
  c.fabric.switches = 2;
  c.fabric.devices_per_switch = 2;
  c.fabric.interleave.mode = InterleaveMode::kRoundRobin;
  c.fabric.interleave.granule = kPageSize;  // page frames stay on one device
  return c;
}

TEST(FabricWorldTest, SingleSwitchDefaultKeepsPinnedLaneSteps) {
  // The topology subsystem must be invisible when unconfigured: the exact
  // quick-scale lane_steps pins of the pre-topology driver, serial and
  // epoch-parallel (see tools/check.sh and DESIGN.md before moving these).
  harness::PoolingConfig cxl =
      harness::Fig7PoolingConfig(engine::BufferPoolKind::kCxl);
  cxl.warmup = Millis(4);
  cxl.measure = Millis(12);
  cxl.world_threads = 0;
  EXPECT_EQ(RunPooling(cxl).lane_steps, 22105u);
  cxl.world_threads = 2;
  EXPECT_EQ(RunPooling(cxl).lane_steps, 22107u);

  harness::PoolingConfig rdma =
      harness::Fig7PoolingConfig(engine::BufferPoolKind::kTieredRdma);
  rdma.warmup = Millis(4);
  rdma.measure = Millis(12);
  rdma.world_threads = 0;
  EXPECT_EQ(RunPooling(rdma).lane_steps, 17460u);
  rdma.world_threads = 2;
  EXPECT_EQ(RunPooling(rdma).lane_steps, 17460u);
}

TEST(FabricWorldTest, MultiSwitchWorldIsThreadCountInvariant) {
  // The epoch-parallel contract: identical results for EVERY epoch thread
  // count (the serial executor legitimately differs by bounded
  // epoch-boundary re-steps on shared channels — the same 22105 vs 22107
  // relationship the single-switch pins encode). The new uplink and
  // multi-port channels must not break that.
  const harness::PoolingResult serial = RunPooling(MultiSwitchPooling(0));
  EXPECT_GT(serial.metrics.queries, 0u);
  const harness::PoolingResult base = RunPooling(MultiSwitchPooling(1));
  EXPECT_GT(base.metrics.queries, 0u);
  for (int threads : {2, 4}) {
    const harness::PoolingResult par =
        RunPooling(MultiSwitchPooling(threads));
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    EXPECT_EQ(base.metrics.queries, par.metrics.queries);
    EXPECT_EQ(base.metrics.events, par.metrics.events);
    EXPECT_EQ(base.metrics.latency.max(), par.metrics.latency.max());
    EXPECT_EQ(base.line_misses, par.line_misses);
    EXPECT_EQ(base.lane_steps, par.lane_steps);
    EXPECT_EQ(base.virtual_end, par.virtual_end);
    EXPECT_DOUBLE_EQ(base.cxl_gbps, par.cxl_gbps);
    EXPECT_DOUBLE_EQ(base.uplink_gbps, par.uplink_gbps);
  }
}

TEST(FabricWorldTest, PlacementDecidesUplinkTraffic) {
  // Local-first keeps every instance's region behind its home switch: no
  // uplink crossings. Spread rotates regions onto the other switch (node id
  // = instance + 1, so the rotation start is always the non-home group) and
  // every access crosses the ring.
  harness::PoolingConfig local = MultiSwitchPooling(0);
  local.fabric.placement = PlacementMode::kLocalFirst;
  const harness::PoolingResult l = RunPooling(local);

  harness::PoolingConfig spread = MultiSwitchPooling(0);
  spread.fabric.placement = PlacementMode::kSpread;
  const harness::PoolingResult s = RunPooling(spread);

  EXPECT_GT(l.metrics.queries, 0u);
  EXPECT_GT(s.metrics.queries, 0u);
  EXPECT_EQ(l.uplink_gbps, 0.0);
  EXPECT_GT(s.uplink_gbps, 0.0);
  // Crossing two extra channels and two extra hops per miss cannot be free.
  EXPECT_LT(s.metrics.queries, l.metrics.queries);
}

TEST(FabricWorldTest, MultiSwitchSnapshotForksBitIdentically) {
  // A forked multi-switch world (snapshot restore) must replay exactly like
  // a cold build: fabric-wide channel state round-trips.
  harness::WorldCache cache;
  const harness::PoolingResult cold = RunPooling(MultiSwitchPooling(0));
  const harness::PoolingResult first =
      RunPooling(MultiSwitchPooling(0), &cache);
  const harness::PoolingResult forked =
      RunPooling(MultiSwitchPooling(0), &cache);
  EXPECT_FALSE(first.snapshot_hit);
  EXPECT_TRUE(forked.snapshot_hit);
  for (const harness::PoolingResult* r : {&first, &forked}) {
    EXPECT_EQ(cold.metrics.queries, r->metrics.queries);
    EXPECT_EQ(cold.metrics.latency.max(), r->metrics.latency.max());
    EXPECT_EQ(cold.lane_steps, r->lane_steps);
    EXPECT_EQ(cold.virtual_end, r->virtual_end);
    EXPECT_DOUBLE_EQ(cold.uplink_gbps, r->uplink_gbps);
  }
}

}  // namespace
}  // namespace polarcxl
