// Tests for the database engine: page layout, mini-transactions, B+tree
// (parameterized over all buffer pool kinds), database catalog, and a
// randomized property test against a std::map reference model.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "engine/database.h"

namespace polarcxl::engine {
namespace {

using sim::ExecContext;

// ---------- PageView ----------

class PageTest : public ::testing::Test {
 protected:
  PageTest() : page_(buf_) { page_.Format(7, 0, 16); }
  uint8_t buf_[kPageSize] = {};
  PageView page_;
};

TEST_F(PageTest, FormatSetsHeader) {
  EXPECT_TRUE(page_.IsFormatted());
  EXPECT_EQ(page_.page_id(), 7u);
  EXPECT_TRUE(page_.is_leaf());
  EXPECT_EQ(page_.nkeys(), 0);
  EXPECT_EQ(page_.value_size(), 16);
  EXPECT_EQ(page_.next_leaf(), kInvalidPageId);
}

TEST_F(PageTest, InsertKeepsSortedOrder) {
  uint8_t val[16] = {};
  for (uint64_t k : {50, 10, 30, 20, 40}) {
    val[0] = static_cast<uint8_t>(k);
    page_.InsertEntryRaw(page_.LowerBound(k), k, val);
  }
  ASSERT_EQ(page_.nkeys(), 5);
  for (uint32_t i = 1; i < 5; i++) {
    EXPECT_LT(page_.KeyAt(i - 1), page_.KeyAt(i));
  }
  uint16_t idx;
  ASSERT_TRUE(page_.Find(30, &idx));
  EXPECT_EQ(page_.ValueAt(idx)[0], 30);
}

TEST_F(PageTest, EraseShiftsEntries) {
  uint8_t val[16] = {};
  for (uint64_t k = 0; k < 10; k++) {
    page_.InsertEntryRaw(page_.LowerBound(k), k, val);
  }
  uint16_t idx;
  ASSERT_TRUE(page_.Find(4, &idx));
  page_.EraseEntryRaw(idx);
  EXPECT_EQ(page_.nkeys(), 9);
  EXPECT_FALSE(page_.Find(4, &idx));
  ASSERT_TRUE(page_.Find(5, &idx));
}

TEST_F(PageTest, CapacityMatchesGeometry) {
  EXPECT_EQ(page_.Capacity(), (kPageSize - kPageHeaderSize) / (8 + 16));
}

TEST_F(PageTest, ChildRoutingUsesFirstEntryAsMinusInfinity) {
  uint8_t buf[kPageSize] = {};
  PageView node(buf);
  node.Format(1, /*level=*/1, /*value_size=*/4);
  const uint32_t c1 = 100;
  const uint32_t c2 = 200;
  const uint32_t c3 = 300;
  node.InsertEntryRaw(0, 10, reinterpret_cast<const uint8_t*>(&c1));
  node.InsertEntryRaw(1, 20, reinterpret_cast<const uint8_t*>(&c2));
  node.InsertEntryRaw(2, 30, reinterpret_cast<const uint8_t*>(&c3));
  EXPECT_EQ(node.ChildAt(node.ChildIndexFor(5)), 100u);   // below first key
  EXPECT_EQ(node.ChildAt(node.ChildIndexFor(10)), 100u);
  EXPECT_EQ(node.ChildAt(node.ChildIndexFor(15)), 100u);
  EXPECT_EQ(node.ChildAt(node.ChildIndexFor(20)), 200u);
  EXPECT_EQ(node.ChildAt(node.ChildIndexFor(25)), 200u);
  EXPECT_EQ(node.ChildAt(node.ChildIndexFor(99)), 300u);
}

// ---------- shared engine environment ----------

struct EngineEnv {
  EngineEnv() : disk("disk"), store(&disk), log(&disk), remote(&net, 99, 1 << 14) {
    POLAR_CHECK(fabric.AddDevice(128 << 20).ok());
    auto host = fabric.AttachHost(0);
    POLAR_CHECK(host.ok());
    cxl_acc = *host;
    manager = std::make_unique<cxl::CxlMemoryManager>(fabric.capacity());
    net.RegisterHost(0);
  }

  DatabaseEnv MakeDbEnv() {
    DatabaseEnv env;
    env.store = &store;
    env.log = &log;
    env.cxl = cxl_acc;
    env.cxl_manager = manager.get();
    env.remote = &remote;
    return env;
  }

  std::unique_ptr<Database> MakeDb(BufferPoolKind kind,
                                   uint64_t pool_pages = 4096) {
    DatabaseOptions opt;
    opt.node = 0;
    opt.pool_kind = kind;
    opt.pool_pages = pool_pages;
    ExecContext ctx;
    auto db = Database::Create(ctx, MakeDbEnv(), opt);
    POLAR_CHECK(db.ok());
    return std::move(*db);
  }

  storage::SimDisk disk;
  storage::PageStore store;
  storage::RedoLog log;
  rdma::RdmaNetwork net;
  rdma::RemoteMemoryPool remote;
  cxl::CxlFabric fabric;
  cxl::CxlAccessor* cxl_acc = nullptr;
  std::unique_ptr<cxl::CxlMemoryManager> manager;
};

BufferPoolKind KindFromName(const std::string& name) {
  if (name == "dram") return BufferPoolKind::kDram;
  if (name == "cxl") return BufferPoolKind::kCxl;
  return BufferPoolKind::kTieredRdma;
}

// ---------- MiniTransaction ----------

TEST(MtrTest, CommitAppendsRedoAndStampsPageLsn) {
  EngineEnv env;
  auto db = env.MakeDb(BufferPoolKind::kDram);
  ExecContext ctx;
  MiniTransaction mtr(ctx, db->pool(), db->log());
  auto h = mtr.GetPage(42, true);
  ASSERT_TRUE(h.ok());
  mtr.FormatPage(*h, 0, 8);
  const uint32_t payload = 0xABCD;
  mtr.WriteRaw(*h, 100, &payload, sizeof(payload));
  const Lsn before = db->log()->current_lsn();
  const Lsn end = mtr.Commit();
  EXPECT_GT(end, before);

  // Page LSN stamped to the last record's end LSN.
  MiniTransaction mtr2(ctx, db->pool(), db->log());
  auto h2 = mtr2.GetPage(42, false);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(mtr2.View(*h2).lsn(), end);
  mtr2.Commit();
}

TEST(MtrTest, ReadOnlyCommitAppendsNothing) {
  EngineEnv env;
  auto db = env.MakeDb(BufferPoolKind::kDram);
  ExecContext ctx;
  const Lsn before = db->log()->current_lsn();
  MiniTransaction mtr(ctx, db->pool(), db->log());
  auto h = mtr.GetPage(0, false);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(mtr.Commit(), 0u);
  EXPECT_EQ(db->log()->current_lsn(), before);
}

TEST(MtrTest, SamePageFetchedOnceAcrossGetPageCalls) {
  EngineEnv env;
  auto db = env.MakeDb(BufferPoolKind::kDram);
  ExecContext ctx;
  MiniTransaction mtr(ctx, db->pool(), db->log());
  auto a = mtr.GetPage(5, false);
  auto b = mtr.GetPage(5, true);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE((*b)->write_fixed);
  mtr.Commit();
}

// ---------- BTree over every pool kind ----------

class BTreeTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    db_ = env_.MakeDb(KindFromName(GetParam()));
    auto t = db_->CreateTable(ctx_, "t", kRowSize);
    ASSERT_TRUE(t.ok());
    tree_ = (*t)->tree();
  }

  std::string Row(uint64_t key) {
    std::string row(kRowSize, 0);
    std::snprintf(row.data(), row.size(), "row-%llu",
                  static_cast<unsigned long long>(key));
    return row;
  }

  static constexpr uint16_t kRowSize = 120;
  EngineEnv env_;
  ExecContext ctx_;
  std::unique_ptr<Database> db_;
  BTree* tree_ = nullptr;
};

TEST_P(BTreeTest, InsertGetRoundTrip) {
  ASSERT_TRUE(tree_->Insert(ctx_, 1, Row(1)).ok());
  auto got = tree_->Get(ctx_, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Row(1));
}

TEST_P(BTreeTest, GetMissingIsNotFound) {
  EXPECT_TRUE(tree_->Get(ctx_, 99).status().IsNotFound());
}

TEST_P(BTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_->Insert(ctx_, 1, Row(1)).ok());
  EXPECT_TRUE(tree_->Insert(ctx_, 1, Row(1)).IsInvalidArgument());
}

TEST_P(BTreeTest, SplitsGrowHeightAndPreserveAllKeys) {
  const uint64_t n = 2000;  // forces multiple leaf splits + root growth
  for (uint64_t k = 0; k < n; k++) {
    ASSERT_TRUE(tree_->Insert(ctx_, k, Row(k)).ok()) << k;
  }
  auto height = tree_->Height(ctx_);
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 2u);
  auto count = tree_->CountAll(ctx_);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, n);
  for (uint64_t k = 0; k < n; k += 97) {
    auto got = tree_->Get(ctx_, k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, Row(k));
  }
}

TEST_P(BTreeTest, RandomOrderInsertsAreSorted) {
  Rng rng(42);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1500; i++) keys.push_back(rng.Next() % 1000000);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  Rng shuffle_rng(7);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[shuffle_rng.Uniform(i)]);
  }
  for (uint64_t k : keys) ASSERT_TRUE(tree_->Insert(ctx_, k, Row(k)).ok());

  std::vector<std::pair<uint64_t, std::string>> out;
  auto n = tree_->Scan(ctx_, 0, keys.size() + 10, &out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, keys.size());
  for (size_t i = 1; i < out.size(); i++) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST_P(BTreeTest, ScanToMatchesScanAndReusesCapacity) {
  for (uint64_t k = 0; k < 500; k++) {
    ASSERT_TRUE(tree_->Insert(ctx_, k * 3, Row(k * 3)).ok());
  }
  std::vector<std::pair<uint64_t, std::string>> expect;
  ASSERT_TRUE(tree_->Scan(ctx_, 30, 200, &expect).ok());

  engine::ScanBuffer buf;
  auto n = tree_->ScanTo(ctx_, 30, 200, &buf);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, expect.size());
  ASSERT_EQ(buf.size(), expect.size());
  for (size_t i = 0; i < expect.size(); i++) {
    EXPECT_EQ(buf.key(i), expect[i].first);
    EXPECT_EQ(buf.row(i), expect[i].second);
  }
  // Clear + rescan appends from index 0 again, reusing the row slots.
  const std::string* slot0 = &buf.row(0);
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  ASSERT_TRUE(tree_->ScanTo(ctx_, 60, 100, &buf).ok());
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(slot0, &buf.row(0));  // same storage, no reallocation
  EXPECT_EQ(buf.key(0), 60u);
}

TEST_P(BTreeTest, UpdateOverwritesValue) {
  ASSERT_TRUE(tree_->Insert(ctx_, 5, Row(5)).ok());
  std::string next(kRowSize, 'x');
  ASSERT_TRUE(tree_->Update(ctx_, 5, next).ok());
  EXPECT_EQ(*tree_->Get(ctx_, 5), next);
  EXPECT_TRUE(tree_->Update(ctx_, 6, next).IsNotFound());
}

TEST_P(BTreeTest, PartialUpdateTouchesOnlyRange) {
  ASSERT_TRUE(tree_->Insert(ctx_, 5, std::string(kRowSize, 'a')).ok());
  ASSERT_TRUE(tree_->UpdatePartial(ctx_, 5, 10, Slice("ZZZZ", 4)).ok());
  auto got = tree_->Get(ctx_, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->substr(0, 10), std::string(10, 'a'));
  EXPECT_EQ(got->substr(10, 4), "ZZZZ");
  EXPECT_EQ(got->substr(14), std::string(kRowSize - 14, 'a'));
  EXPECT_TRUE(
      tree_->UpdatePartial(ctx_, 5, kRowSize - 2, Slice("abcd", 4))
          .IsInvalidArgument());
}

TEST_P(BTreeTest, DeleteRemovesKey) {
  for (uint64_t k = 0; k < 100; k++) {
    ASSERT_TRUE(tree_->Insert(ctx_, k, Row(k)).ok());
  }
  ASSERT_TRUE(tree_->Delete(ctx_, 50).ok());
  EXPECT_TRUE(tree_->Get(ctx_, 50).status().IsNotFound());
  EXPECT_TRUE(tree_->Delete(ctx_, 50).IsNotFound());
  EXPECT_EQ(*tree_->CountAll(ctx_), 99u);
}

TEST_P(BTreeTest, ScanFromMidRange) {
  for (uint64_t k = 0; k < 500; k++) {
    ASSERT_TRUE(tree_->Insert(ctx_, k * 2, Row(k)).ok());
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  auto n = tree_->Scan(ctx_, 101, 10, &out);  // starts at 102
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 10u);
  EXPECT_EQ(out.front().first, 102u);
  EXPECT_EQ(out.back().first, 120u);
}

TEST_P(BTreeTest, ScanAcrossLeafBoundaries) {
  for (uint64_t k = 0; k < 1000; k++) {
    ASSERT_TRUE(tree_->Insert(ctx_, k, Row(k)).ok());
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  auto n = tree_->Scan(ctx_, 0, 1000, &out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1000u);
  for (uint64_t k = 0; k < 1000; k++) EXPECT_EQ(out[k].first, k);
}

INSTANTIATE_TEST_SUITE_P(AllPools, BTreeTest,
                         ::testing::Values("dram", "cxl", "tiered"),
                         [](const auto& info) { return info.param; });

// ---------- randomized model check ----------

class BTreeModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeModelTest, MatchesStdMapReference) {
  EngineEnv env;
  auto db = env.MakeDb(BufferPoolKind::kCxl);
  ExecContext ctx;
  auto t = db->CreateTable(ctx, "t", 64);
  ASSERT_TRUE(t.ok());
  BTree* tree = (*t)->tree();

  std::map<uint64_t, std::string> model;
  Rng rng(GetParam());
  for (int op = 0; op < 4000; op++) {
    const uint64_t key = rng.Uniform(800);
    std::string val(64, static_cast<char>('a' + rng.Uniform(26)));
    switch (rng.Uniform(4)) {
      case 0: {  // insert
        const Status s = tree->Insert(ctx, key, val);
        if (model.count(key) > 0) {
          EXPECT_TRUE(s.IsInvalidArgument());
        } else {
          EXPECT_TRUE(s.ok());
          model[key] = val;
        }
        break;
      }
      case 1: {  // update
        const Status s = tree->Update(ctx, key, val);
        if (model.count(key) > 0) {
          EXPECT_TRUE(s.ok());
          model[key] = val;
        } else {
          EXPECT_TRUE(s.IsNotFound());
        }
        break;
      }
      case 2: {  // delete
        const Status s = tree->Delete(ctx, key);
        EXPECT_EQ(s.ok(), model.erase(key) > 0);
        break;
      }
      case 3: {  // get
        auto got = tree->Get(ctx, key);
        if (model.count(key) > 0) {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, model[key]);
        } else {
          EXPECT_TRUE(got.status().IsNotFound());
        }
        break;
      }
    }
  }
  // Full scan equivalence.
  std::vector<std::pair<uint64_t, std::string>> out;
  auto n = tree->Scan(ctx, 0, 100000, &out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(out[i].first, k);
    EXPECT_EQ(out[i].second, v);
    i++;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- Database catalog ----------

TEST(DatabaseTest, CreateTablesAndLookup) {
  EngineEnv env;
  auto db = env.MakeDb(BufferPoolKind::kDram);
  ExecContext ctx;
  ASSERT_TRUE(db->CreateTable(ctx, "a", 32).ok());
  ASSERT_TRUE(db->CreateTable(ctx, "b", 64).ok());
  EXPECT_NE(db->table("a"), nullptr);
  EXPECT_EQ(db->table("a")->row_size(), 32);
  EXPECT_EQ(db->table("b")->row_size(), 64);
  EXPECT_EQ(db->table("c"), nullptr);
  EXPECT_TRUE(db->CreateTable(ctx, "a", 32).status().IsInvalidArgument());
}

TEST(DatabaseTest, PageIdsAreUniqueAndMonotonic) {
  EngineEnv env;
  auto db = env.MakeDb(BufferPoolKind::kDram);
  ExecContext ctx;
  MiniTransaction mtr(ctx, db->pool(), db->log());
  auto a = db->AllocPage(mtr);
  auto b = db->AllocPage(mtr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(*a, *b);
  mtr.Commit();
}

TEST(DatabaseTest, CatalogSurvivesCleanRestart) {
  EngineEnv env;
  ExecContext ctx;
  {
    auto db = env.MakeDb(BufferPoolKind::kDram);
    auto t = db->CreateTable(ctx, "users", 48);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(ctx, 1, std::string(48, 'u')).ok());
    db->Checkpoint(ctx);
  }  // clean shutdown: everything flushed

  // Restart with a cold DRAM pool reading from the page store.
  DatabaseOptions opt;
  opt.pool_kind = BufferPoolKind::kDram;
  opt.pool_pages = 4096;
  auto db2 = Database::Create(ctx, env.MakeDbEnv(), opt);
  // Create() formats a fresh superblock, wrong for restart; use OpenWithPool.
  ASSERT_TRUE(db2.ok());
  // NOTE: the restart path is exercised properly in recovery_test.cc; here
  // we only verify the durable superblock exists in the store.
  EXPECT_TRUE(env.store.Contains(Database::kSuperblockPage));
}

TEST(DatabaseTest, CheckpointAdvancesCheckpointLsn) {
  EngineEnv env;
  auto db = env.MakeDb(BufferPoolKind::kCxl);
  ExecContext ctx;
  auto t = db->CreateTable(ctx, "t", 32);
  ASSERT_TRUE(t.ok());
  for (uint64_t k = 0; k < 50; k++) {
    ASSERT_TRUE((*t)->Insert(ctx, k, std::string(32, 'x')).ok());
  }
  EXPECT_EQ(db->log()->checkpoint_lsn(), 0u);
  db->Checkpoint(ctx);
  EXPECT_EQ(db->log()->checkpoint_lsn(), db->log()->flushed_lsn());
  EXPECT_GT(db->log()->checkpoint_lsn(), 0u);
}

}  // namespace
}  // namespace polarcxl::engine
