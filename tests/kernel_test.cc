// Copyright 2026 The PolarCXLMem Reproduction Authors.
// Cross-checks for the third-wave SIMD kernels. Two oracle strategies:
//
//  * NodeLowerBound (engine/node_search.h) is checked slot-for-slot against
//    NodeLowerBoundScalar, and PageView::LowerBound's reconstructed probe
//    sequence against a recording textbook search.
//  * CpuCacheSim's probe kernels (ProbeWays inside AccessProbe/ProbeRange)
//    are checked against a from-scratch reference cache model implemented
//    here with no SIMD at all. The same test runs in the POLAR_NO_SIMD CI
//    leg, so the AVX2/SSE4.1 and scalar builds must both match this oracle
//    access-for-access — which is exactly the SIMD-vs-scalar equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "engine/node_search.h"
#include "engine/page.h"
#include "sim/cpu_cache.h"

namespace polarcxl {
namespace {

using engine::NodeLowerBound;
using engine::NodeLowerBoundScalar;
using sim::CpuCacheSim;

// ---------------------------------------------------------------------------
// Node search vs scalar reference
// ---------------------------------------------------------------------------

/// Builds a fake node: `keys` written with `stride` spacing (value bytes
/// filled with a marker so an out-of-bounds read would be conspicuous).
std::vector<uint8_t> MakeNode(const std::vector<uint64_t>& keys,
                              uint32_t stride) {
  std::vector<uint8_t> buf(keys.size() * stride + 64, 0xAB);
  for (size_t i = 0; i < keys.size(); i++) {
    std::memcpy(buf.data() + i * stride, &keys[i], sizeof(uint64_t));
  }
  return buf;
}

void CheckAllQueries(const std::vector<uint64_t>& keys, uint32_t stride) {
  const std::vector<uint8_t> node = MakeNode(keys, stride);
  const uint32_t n = static_cast<uint32_t>(keys.size());
  std::vector<uint64_t> queries;
  for (uint64_t k : keys) {
    queries.push_back(k);
    queries.push_back(k - 1);  // absent key just below (may wrap; fine)
    queries.push_back(k + 1);  // absent key just above
  }
  queries.push_back(0);
  queries.push_back(UINT64_MAX);
  for (uint64_t q : queries) {
    const uint32_t expect = NodeLowerBoundScalar(node.data(), stride, n, q);
    const uint32_t got = NodeLowerBound(node.data(), stride, n, q);
    ASSERT_EQ(expect, got) << "n=" << n << " stride=" << stride
                           << " query=" << q;
  }
}

TEST(NodeSearchTest, EmptyNode) {
  const std::vector<uint8_t> node(64, 0);
  EXPECT_EQ(0u, NodeLowerBound(node.data(), 16, 0, 42));
}

TEST(NodeSearchTest, BoundarySlots) {
  // First slot, last slot, absent keys between slots, below-all, above-all
  // — across strides covering internal nodes (12) and common leaf layouts.
  for (uint32_t stride : {8u, 12u, 16u, 40u, 72u, 136u}) {
    CheckAllQueries({10}, stride);                      // single entry
    CheckAllQueries({10, 20}, stride);                  // two entries
    CheckAllQueries({10, 20, 30, 40, 50, 60, 70}, stride);
    // Window-sized and just-past-window node (exercises the descent/tail
    // hand-off at kWindow = 8).
    CheckAllQueries({2, 4, 6, 8, 10, 12, 14, 16}, stride);
    CheckAllQueries({2, 4, 6, 8, 10, 12, 14, 16, 18}, stride);
  }
}

TEST(NodeSearchTest, FullNodeAllSlots) {
  // A full 16 KB page worth of entries at leaf stride.
  const uint32_t stride = 40;  // 8-byte key + 32-byte value
  const uint32_t n = (kPageSize - engine::kPageHeaderSize) / stride;
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < n; i++) keys.push_back(5 + 10ULL * i);
  CheckAllQueries(keys, stride);
}

TEST(NodeSearchTest, RandomizedAgainstScalar) {
  std::mt19937_64 rng(20260809);
  for (int iter = 0; iter < 200; iter++) {
    const uint32_t stride = 8 + 4 * (rng() % 40);
    const uint32_t max_n =
        (kPageSize - engine::kPageHeaderSize) / stride;
    const uint32_t n = rng() % (max_n + 1);
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng() >> (rng() % 32);  // mixed magnitudes
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    const std::vector<uint8_t> node = MakeNode(keys, stride);
    const uint32_t nn = static_cast<uint32_t>(keys.size());
    for (int q = 0; q < 64; q++) {
      const uint64_t query = (q % 2 == 0 && nn > 0)
                                 ? keys[rng() % nn] + (rng() % 3) - 1
                                 : rng();
      ASSERT_EQ(NodeLowerBoundScalar(node.data(), stride, nn, query),
                NodeLowerBound(node.data(), stride, nn, query))
          << "stride=" << stride << " n=" << nn << " query=" << query;
    }
  }
}

// High bit set: the AVX2 tail orders unsigned keys via a sign-flip; keys
// straddling 2^63 are exactly where a missing bias would misorder.
TEST(NodeSearchTest, UnsignedOrderAcrossSignBit) {
  std::vector<uint64_t> keys = {1,
                                0x7FFFFFFFFFFFFFFEULL,
                                0x7FFFFFFFFFFFFFFFULL,
                                0x8000000000000000ULL,
                                0x8000000000000001ULL,
                                UINT64_MAX - 1};
  for (uint32_t stride : {8u, 12u, 40u}) CheckAllQueries(keys, stride);
}

// ---------------------------------------------------------------------------
// Probe reconstruction: LowerBound's charged sequence == textbook search
// ---------------------------------------------------------------------------

TEST(ProbeReplayTest, MatchesTextbookBinarySearch) {
  std::mt19937_64 rng(7);
  std::vector<uint8_t> frame(kPageSize, 0);
  engine::PageView page(frame.data());
  page.Format(/*id=*/1, /*level=*/0, /*value_size=*/32);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 300; i++) keys.push_back(3 + 7ULL * i);
  for (uint64_t k : keys) {
    std::vector<uint8_t> value(32, 0);
    engine::ProbeList ignore;
    page.InsertEntryRaw(page.LowerBound(k, &ignore), k,
                        value.data());
  }
  for (int q = 0; q < 2000; q++) {
    const uint64_t query = rng() % 2200;
    engine::ProbeList probes;
    const uint16_t ans = page.LowerBound(query, &probes);
    // Reference: record the offsets a textbook lower_bound actually reads.
    std::vector<uint32_t> expect;
    uint32_t lo = 0;
    uint32_t hi = page.nkeys();
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      expect.push_back(engine::kPageHeaderSize + mid * page.entry_size());
      if (page.KeyAt(mid) < query) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    ASSERT_EQ(lo, ans);
    ASSERT_EQ(expect.size(), probes.count);
    for (uint32_t i = 0; i < probes.count; i++) {
      ASSERT_EQ(expect[i], probes.offs[i]) << "probe " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// CpuCacheSim probe kernels vs a scalar reference cache model
// ---------------------------------------------------------------------------

/// From-scratch set-associative LRU model mirroring CpuCacheSim's documented
/// semantics (write-allocate, LRU by global tick, per-set dirty bits). No
/// memo, no bitmask shortcuts, no SIMD — every probe is a plain loop.
class ReferenceCache {
 public:
  ReferenceCache(uint32_t num_sets, uint32_t ways)
      : num_sets_(num_sets), ways_(ways), sets_(num_sets) {}

  struct Line {
    uint64_t tag = 0;  // line + 1; 0 == empty
    uint64_t tick = 0;
    bool dirty = false;
  };

  struct Outcome {
    bool hit = false;
    bool evicted_dirty = false;
    uint64_t evicted_addr = 0;
  };

  Outcome Access(uint64_t line, bool write) {
    Outcome out;
    auto& set = sets_[SetIndex(line)];
    tick_++;
    const uint64_t tag = line + 1;
    for (auto& l : set) {
      if (l.tag == tag) {
        l.tick = tick_;
        l.dirty = l.dirty || write;
        hits_++;
        out.hit = true;
        return out;
      }
    }
    misses_++;
    if (set.size() < ways_) {
      set.push_back(Line{tag, tick_, write});
      return out;
    }
    size_t victim = 0;
    for (size_t i = 1; i < set.size(); i++) {
      if (set[i].tick < set[victim].tick) victim = i;
    }
    if (set[victim].dirty) {
      out.evicted_dirty = true;
      out.evicted_addr = (set[victim].tag - 1) * kCacheLineSize;
    }
    set[victim] = Line{tag, tick_, write};
    return out;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  uint32_t SetIndex(uint64_t line) const {
    return static_cast<uint32_t>((line * 0x9E3779B97F4A7C15ULL) >> 33) &
           (num_sets_ - 1);
  }

  uint32_t num_sets_;
  uint32_t ways_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<std::vector<Line>> sets_;
};

TEST(CacheProbeTest, SingleAccessesMatchReference) {
  // 64 KB, 16 ways -> 64 sets: small enough that random lines collide and
  // evict constantly, exercising hit, install, and LRU-evict paths.
  CpuCacheSim sim(64 * 1024, 16);
  ReferenceCache ref(sim.num_sets(), sim.ways());
  std::mt19937_64 rng(123);
  for (int i = 0; i < 200000; i++) {
    const uint64_t line = rng() % 4096;
    const bool write = (rng() % 3) == 0;
    const auto got = sim.Access(line * kCacheLineSize, write, nullptr);
    const auto want = ref.Access(line, write);
    ASSERT_EQ(want.hit, got.hit) << "access " << i << " line " << line;
    ASSERT_EQ(want.evicted_dirty, got.evicted_dirty) << "access " << i;
    if (want.evicted_dirty) {
      ASSERT_EQ(want.evicted_addr, got.evicted_addr) << "access " << i;
    }
  }
  EXPECT_EQ(ref.hits(), sim.hits());
  EXPECT_EQ(ref.misses(), sim.misses());
}

TEST(CacheProbeTest, NonDefaultWaysMatchesReference) {
  // ways != 16 takes the generic probe loop in every build.
  CpuCacheSim sim(32 * 1024, 8);
  ReferenceCache ref(sim.num_sets(), sim.ways());
  std::mt19937_64 rng(321);
  for (int i = 0; i < 50000; i++) {
    const uint64_t line = rng() % 2048;
    const bool write = (rng() % 4) == 0;
    const auto got = sim.Access(line * kCacheLineSize, write, nullptr);
    const auto want = ref.Access(line, write);
    ASSERT_EQ(want.hit, got.hit) << "access " << i;
    ASSERT_EQ(want.evicted_dirty, got.evicted_dirty) << "access " << i;
  }
  EXPECT_EQ(ref.hits(), sim.hits());
  EXPECT_EQ(ref.misses(), sim.misses());
}

TEST(CacheProbeTest, TouchRangeMatchesReference) {
  CpuCacheSim sim(64 * 1024, 16);
  ReferenceCache ref(sim.num_sets(), sim.ways());
  std::mt19937_64 rng(456);
  for (int i = 0; i < 20000; i++) {
    const uint64_t first = rng() % 8192;
    const uint32_t count = 1 + rng() % 64;
    const bool write = (rng() % 3) == 0;
    CpuCacheSim::RangeResult out;
    sim.TouchRange(first, count, write, nullptr, &out);
    uint32_t ref_evictions = 0;
    for (uint32_t j = 0; j < count; j++) {
      const auto want = ref.Access(first + j, write);
      ASSERT_EQ(want.hit, (out.hit_mask >> j) & 1)
          << "range " << i << " line " << j;
      if (want.evicted_dirty) {
        ASSERT_LT(ref_evictions, out.num_evictions);
        ASSERT_EQ(j, out.evictions[ref_evictions].index);
        ASSERT_EQ(want.evicted_addr, out.evictions[ref_evictions].addr);
        ref_evictions++;
      }
    }
    ASSERT_EQ(ref_evictions, out.num_evictions) << "range " << i;
  }
  EXPECT_EQ(ref.hits(), sim.hits());
  EXPECT_EQ(ref.misses(), sim.misses());
}

TEST(CacheProbeTest, TouchRangeBitIdenticalToPerLineAccess) {
  // Two sims fed the same stream — one through Access per line, one through
  // TouchRange — must end in the same full state (tags, ticks, valid,
  // dirty, memo, counters), which is what lets MemorySpace route multi-line
  // touches through the batched kernel without perturbing virtual time.
  CpuCacheSim a(128 * 1024, 16);
  CpuCacheSim b(128 * 1024, 16);
  std::mt19937_64 rng(789);
  for (int i = 0; i < 20000; i++) {
    const uint64_t first = rng() % 16384;
    const uint32_t count = 1 + rng() % 64;
    const bool write = (rng() % 3) == 0;
    for (uint32_t j = 0; j < count; j++) {
      a.Access((first + j) * kCacheLineSize, write, nullptr);
    }
    CpuCacheSim::RangeResult out;
    b.TouchRange(first, count, write, nullptr, &out);
  }
  const CpuCacheSim::State sa = a.Capture();
  const CpuCacheSim::State sb = b.Capture();
  EXPECT_EQ(sa.tick, sb.tick);
  EXPECT_EQ(sa.live_lines, sb.live_lines);
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.tags, sb.tags);
  EXPECT_EQ(sa.ticks, sb.ticks);
  EXPECT_EQ(sa.valid, sb.valid);
  EXPECT_EQ(sa.dirty, sb.dirty);
  ASSERT_EQ(sa.memo.size(), sb.memo.size());
  for (size_t i = 0; i < sa.memo.size(); i++) {
    EXPECT_EQ(sa.memo[i].tag, sb.memo[i].tag) << "memo slot " << i;
    EXPECT_EQ(sa.memo[i].slot, sb.memo[i].slot) << "memo slot " << i;
  }
}

}  // namespace
}  // namespace polarcxl
