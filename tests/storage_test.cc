// Tests for the storage layer: simulated disk, page store, redo log.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "storage/disk.h"
#include "storage/page_store.h"
#include "storage/redo_log.h"

namespace polarcxl::storage {
namespace {

using sim::ExecContext;

TEST(SimDiskTest, LatencyAndBandwidthCharged) {
  SimDisk disk("d");
  ExecContext ctx;
  disk.Read(ctx, kPageSize);
  EXPECT_GE(ctx.now, 90'000);
  const Nanos after_read = ctx.now;
  disk.Write(ctx, kPageSize);
  EXPECT_GE(ctx.now - after_read, 50'000);
  EXPECT_EQ(disk.read_bytes(), static_cast<uint64_t>(kPageSize));
  EXPECT_EQ(disk.write_ops(), 1u);
}

TEST(SimDiskTest, SaturationQueues) {
  SimDisk::Options o;
  o.bandwidth_bps = 1000000000;  // 1 GB/s
  SimDisk disk("d", o);
  ExecContext last;
  for (int i = 0; i < 1000; i++) {
    ExecContext ctx;
    disk.Write(ctx, 1 << 20);  // 1 GB total => ~1 s
    last = ctx;
  }
  EXPECT_GT(last.now, Secs(0.9));
}

TEST(PageStoreTest, UnwrittenPagesReadAsZero) {
  SimDisk disk("d");
  PageStore store(&disk);
  std::array<uint8_t, kPageSize> buf;
  buf.fill(0xFF);
  ExecContext ctx;
  store.ReadPage(ctx, 7, buf.data());
  for (uint8_t b : buf) ASSERT_EQ(b, 0);
  EXPECT_FALSE(store.Contains(7));
}

TEST(PageStoreTest, WriteReadRoundTrip) {
  SimDisk disk("d");
  PageStore store(&disk);
  std::array<uint8_t, kPageSize> in;
  for (size_t i = 0; i < in.size(); i++) in[i] = static_cast<uint8_t>(i * 7);
  ExecContext ctx;
  store.WritePage(ctx, 3, in.data());
  std::array<uint8_t, kPageSize> out{};
  store.ReadPage(ctx, 3, out.data());
  EXPECT_EQ(in, out);
  EXPECT_EQ(store.num_pages(), 1u);
  EXPECT_EQ(ctx.pages_read_io, 1u);
  EXPECT_EQ(ctx.pages_written_io, 1u);
}

class RedoLogTest : public ::testing::Test {
 protected:
  RedoLogTest() : disk_("d"), log_(&disk_) {}

  RedoRecord MakeRecord(PageId page, uint16_t off, std::vector<uint8_t> data,
                        uint64_t mtr) {
    RedoRecord r;
    r.page_id = page;
    r.page_off = off;
    r.len = static_cast<uint16_t>(data.size());
    r.data.assign(data.begin(), data.end());
    r.mtr_id = mtr;
    return r;
  }

  SimDisk disk_;
  RedoLog log_;
};

TEST_F(RedoLogTest, LsnAdvancesByRecordBytes) {
  const uint64_t mtr = log_.NewMtrId();
  std::vector<RedoRecord> recs;
  recs.push_back(MakeRecord(1, 0, {1, 2, 3, 4}, mtr));
  const Lsn end = log_.AppendMtr(std::move(recs));
  EXPECT_EQ(end, 32u + 4u);  // 32-byte header + payload
  EXPECT_EQ(log_.current_lsn(), end);
  EXPECT_EQ(log_.flushed_lsn(), 0u);
  EXPECT_EQ(log_.unflushed_bytes(), end);
}

TEST_F(RedoLogTest, FlushMakesRecordsDurable) {
  std::vector<RedoRecord> recs;
  recs.push_back(MakeRecord(1, 8, {9, 9}, log_.NewMtrId()));
  log_.AppendMtr(std::move(recs));
  ExecContext ctx;
  const Lsn flushed = log_.Flush(ctx);
  EXPECT_EQ(flushed, log_.current_lsn());
  EXPECT_GT(ctx.now, 0);
  EXPECT_EQ(log_.DurableRecordsFrom(0).size(), 1u);
}

TEST_F(RedoLogTest, CrashLosesUnflushedTail) {
  std::vector<RedoRecord> a;
  a.push_back(MakeRecord(1, 0, {1}, log_.NewMtrId()));
  log_.AppendMtr(std::move(a));
  ExecContext ctx;
  log_.Flush(ctx);
  std::vector<RedoRecord> b;
  b.push_back(MakeRecord(2, 0, {2}, log_.NewMtrId()));
  const Lsn before_crash = log_.AppendMtr(std::move(b));
  EXPECT_GT(before_crash, log_.flushed_lsn());

  log_.LoseUnflushedTail();
  EXPECT_EQ(log_.current_lsn(), log_.flushed_lsn());
  EXPECT_EQ(log_.DurableRecordsFrom(0).size(), 1u);
}

TEST_F(RedoLogTest, ScanFromLsnSkipsOlderRecords) {
  Lsn mid = 0;
  for (int i = 0; i < 10; i++) {
    std::vector<RedoRecord> recs;
    recs.push_back(
        MakeRecord(static_cast<PageId>(i), 0, {1, 2}, log_.NewMtrId()));
    const Lsn end = log_.AppendMtr(std::move(recs));
    if (i == 4) mid = end;
  }
  ExecContext ctx;
  log_.Flush(ctx);
  const auto all = log_.DurableRecordsFrom(0);
  const auto tail = log_.DurableRecordsFrom(mid);
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail[0]->page_id, 5u);
}

TEST_F(RedoLogTest, CheckpointMonotonic) {
  std::vector<RedoRecord> recs;
  recs.push_back(MakeRecord(1, 0, {1, 2, 3}, log_.NewMtrId()));
  log_.AppendMtr(std::move(recs));
  ExecContext ctx;
  const Lsn flushed = log_.Flush(ctx);
  log_.Checkpoint(flushed);
  EXPECT_EQ(log_.checkpoint_lsn(), flushed);
  log_.Checkpoint(0);  // must not regress
  EXPECT_EQ(log_.checkpoint_lsn(), flushed);
}

TEST_F(RedoLogTest, ChargeScanCostsProportionalToLogSize) {
  for (int i = 0; i < 100; i++) {
    std::vector<RedoRecord> recs;
    recs.push_back(MakeRecord(1, 0, std::vector<uint8_t>(100, 7),
                              log_.NewMtrId()));
    log_.AppendMtr(std::move(recs));
  }
  ExecContext ctx;
  log_.Flush(ctx);
  disk_.ResetStats();
  ExecContext scan_ctx;
  log_.ChargeScan(scan_ctx, 0);
  EXPECT_EQ(disk_.read_bytes(), log_.flushed_lsn());
}

TEST_F(RedoLogTest, AtomicMtrAppendKeepsRecordsAdjacent) {
  std::vector<RedoRecord> recs;
  const uint64_t mtr = log_.NewMtrId();
  recs.push_back(MakeRecord(1, 0, {1}, mtr));
  recs.push_back(MakeRecord(2, 0, {2}, mtr));
  recs.push_back(MakeRecord(3, 0, {3}, mtr));
  log_.AppendMtr(std::move(recs));
  ExecContext ctx;
  log_.Flush(ctx);
  const auto all = log_.DurableRecordsFrom(0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->mtr_id, all[1]->mtr_id);
  EXPECT_LT(all[0]->lsn, all[1]->lsn);
  EXPECT_LT(all[1]->lsn, all[2]->lsn);
}

}  // namespace
}  // namespace polarcxl::storage
