// Property tests for the multi-primary coherency protocols: randomized
// interleavings of reads and writes from several nodes must always observe
// the latest committed value ("read latest" under distributed page locks),
// on both the CXL protocol and the RDMA baseline.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "engine/database.h"
#include "sharing/buffer_fusion.h"
#include "sharing/mp_node.h"
#include "sharing/rdma_sharing.h"

namespace polarcxl::sharing {
namespace {

using engine::Database;
using engine::DatabaseEnv;
using engine::DatabaseOptions;
using sim::ExecContext;

constexpr int kNodes = 4;
constexpr uint16_t kRowSize = 72;

/// A cluster of kNodes primaries over one table, either protocol.
class MpCluster {
 public:
  explicit MpCluster(bool use_cxl)
      : disk_("disk"), store_(&disk_), log_(&disk_) {
    POLAR_CHECK(fabric_.AddDevice(256 << 20).ok());
    manager_ = std::make_unique<cxl::CxlMemoryManager>(fabric_.capacity());
    net_.RegisterHost(200);
    for (NodeId n = 0; n < kNodes; n++) net_.RegisterHost(n);

    if (use_cxl) {
      locks_ = std::make_unique<DistLockManager>(
          std::make_unique<CxlLockTransport>(2600));
      ExecContext ctx;
      BufferFusionServer::Options so;
      so.dbp_pages = 1024;
      so.max_nodes = 8;
      fusion_ = std::move(*BufferFusionServer::Create(
          ctx, so, *fabric_.AttachHost(90), manager_.get(), &store_,
          locks_.get()));
    } else {
      group_ = std::make_unique<RdmaSharingGroup>(&net_, 200, 1024, &store_);
    }

    for (NodeId n = 0; n < kNodes; n++) {
      std::unique_ptr<bufferpool::BufferPool> pool;
      if (use_cxl) {
        CxlSharedBufferPool::Options po;
        po.node = n;
        pool = std::make_unique<CxlSharedBufferPool>(
            po, *fabric_.AttachHost(n), fusion_.get(), locks_.get(), &store_);
      } else {
        sim::MemorySpace::Options mo;
        mo.name = "dram" + std::to_string(n);
        drams_.push_back(std::make_unique<sim::MemorySpace>(mo));
        RdmaSharedBufferPool::Options po;
        po.node = n;
        po.lbp_capacity_pages = 64;
        po.phys_base = (1ULL << 46) + (static_cast<uint64_t>(n) << 38);
        pool = std::make_unique<RdmaSharedBufferPool>(po, drams_.back().get(),
                                                      group_.get());
      }
      DatabaseEnv env;
      env.store = &store_;
      env.log = &log_;
      DatabaseOptions opt;
      opt.node = n;
      ExecContext setup;
      dbs_[n] = std::move(*(n == 0 ? Database::CreateWithPool(
                                         setup, env, opt, std::move(pool))
                                   : Database::OpenWithPool(
                                         setup, env, opt, std::move(pool))));
      if (n == 0) {
        auto t = *dbs_[0]->CreateTable(setup, "t", kRowSize);
        for (uint64_t k = 1; k <= 400; k++) {
          POLAR_CHECK(t->Insert(setup, k, std::string(kRowSize, '_')).ok());
        }
        dbs_[0]->CommitTransaction(setup);
        start_time_ = setup.now;
      }
    }
  }

  engine::Table* table(NodeId n) { return dbs_[n]->table(size_t{0}); }
  Database* db(NodeId n) { return dbs_[n].get(); }
  Nanos start_time() const { return start_time_; }

 private:
  storage::SimDisk disk_;
  storage::PageStore store_;
  storage::RedoLog log_;
  cxl::CxlFabric fabric_;
  std::unique_ptr<cxl::CxlMemoryManager> manager_;
  rdma::RdmaNetwork net_;
  std::unique_ptr<DistLockManager> locks_;
  std::unique_ptr<BufferFusionServer> fusion_;
  std::unique_ptr<RdmaSharingGroup> group_;
  std::vector<std::unique_ptr<sim::MemorySpace>> drams_;
  std::unique_ptr<Database> dbs_[kNodes];
  Nanos start_time_ = 0;
};

/// (protocol, seed) matrix.
class CoherencyPropertyTest
    : public ::testing::TestWithParam<std::tuple<bool, uint64_t>> {};

TEST_P(CoherencyPropertyTest, EveryReadObservesLatestCommittedWrite) {
  const bool use_cxl = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  MpCluster cluster(use_cxl);

  // Serialized random interleaving across nodes (the virtual-time lock
  // table orders the conflicting accesses; real execution is sequential,
  // so "latest committed" is well defined).
  std::map<uint64_t, std::string> model;
  Rng rng(seed);
  ExecContext ctxs[kNodes];
  for (int n = 0; n < kNodes; n++) {
    ctxs[n].cache = cluster.db(n)->cache();
    ctxs[n].now = cluster.start_time();
  }

  for (int op = 0; op < 1200; op++) {
    const NodeId n = static_cast<NodeId>(rng.Uniform(kNodes));
    const uint64_t key = 1 + rng.Uniform(400);
    if (rng.Chance(0.4)) {
      std::string val(kRowSize, static_cast<char>('A' + rng.Uniform(26)));
      ASSERT_TRUE(cluster.table(n)->Update(ctxs[n], key, val).ok());
      cluster.db(n)->CommitTransaction(ctxs[n]);
      model[key] = val;
    } else {
      auto got = cluster.table(n)->Get(ctxs[n], key);
      ASSERT_TRUE(got.ok());
      const std::string expected =
          model.count(key) > 0 ? model[key] : std::string(kRowSize, '_');
      ASSERT_EQ(*got, expected)
          << (use_cxl ? "cxl" : "rdma") << " node " << n << " key " << key
          << " op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CoherencyPropertyTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "cxl" : "rdma") + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- DBP recycle / removal flag path under pressure ----------

TEST(RecyclePropertyTest, CxlSharingSurvivesDbpPressure) {
  // DBP much smaller than the dataset: the background recycler must evict
  // and nodes must chase removal flags — without ever serving stale data.
  storage::SimDisk disk("disk");
  storage::PageStore store(&disk);
  storage::RedoLog log(&disk);
  cxl::CxlFabric fabric;
  POLAR_CHECK(fabric.AddDevice(256 << 20).ok());
  cxl::CxlMemoryManager manager(fabric.capacity());
  DistLockManager locks(std::make_unique<CxlLockTransport>(2600));
  ExecContext sctx;
  BufferFusionServer::Options so;
  so.dbp_pages = 24;  // dataset needs ~40 pages: constant recycling
  so.max_nodes = 4;
  auto fusion = std::move(*BufferFusionServer::Create(
      sctx, so, *fabric.AttachHost(90), &manager, &store, &locks));

  CxlSharedBufferPool::Options po;
  po.node = 0;
  auto pool = std::make_unique<CxlSharedBufferPool>(
      po, *fabric.AttachHost(0), fusion.get(), &locks, &store);
  CxlSharedBufferPool* pool_raw = pool.get();
  DatabaseEnv env;
  env.store = &store;
  env.log = &log;
  DatabaseOptions opt;
  ExecContext ctx;
  auto db = std::move(
      *Database::CreateWithPool(ctx, env, opt, std::move(pool)));
  auto table = *db->CreateTable(ctx, "t", 128);
  for (uint64_t k = 1; k <= 3000; k++) {
    ASSERT_TRUE(table->Insert(ctx, k, std::string(128, 'a' + k % 26)).ok())
        << k;
    if (k % 64 == 0) fusion->RecycleLru(ctx, 4);
  }
  db->CommitTransaction(ctx);

  // Sweep the whole key space; every value must be intact even though most
  // pages were recycled (persisted + re-fetched) multiple times.
  Rng rng(3);
  for (int i = 0; i < 500; i++) {
    const uint64_t k = 1 + rng.Uniform(3000);
    auto got = table->Get(ctx, k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, std::string(128, 'a' + k % 26)) << k;
  }
  EXPECT_GT(pool_raw->removals_observed(), 0u);
  EXPECT_LE(fusion->used_slots(), 24u);
}

}  // namespace
}  // namespace polarcxl::sharing
