// Edge cases across the engine and substrate layers: page geometry limits,
// empty structures, boundary scans, early latch release, metadata layout
// contracts.
#include <gtest/gtest.h>

#include <memory>

#include "engine/database.h"
#include "sharing/coherency.h"

namespace polarcxl {
namespace {

using engine::BufferPoolKind;
using engine::Database;
using engine::MiniTransaction;
using engine::PageView;
using sim::ExecContext;

struct EdgeEnv {
  EdgeEnv() : disk("d"), store(&disk), log(&disk) {}

  std::unique_ptr<Database> MakeDb(uint64_t pool_pages = 4096) {
    engine::DatabaseEnv env;
    env.store = &store;
    env.log = &log;
    engine::DatabaseOptions opt;
    opt.pool_kind = BufferPoolKind::kDram;
    opt.pool_pages = pool_pages;
    ExecContext ctx;
    return std::move(*Database::Create(ctx, env, opt));
  }

  storage::SimDisk disk;
  storage::PageStore store;
  storage::RedoLog log;
};

// ---------- page geometry ----------

TEST(PageGeometryTest, LayoutContracts) {
  // The buffer pools peek the page LSN at bytes [8,16); keep that stable.
  uint8_t buf[kPageSize] = {};
  PageView page(buf);
  page.Format(3, 0, 32);
  page.set_lsn(0x1122334455667788ULL);
  Lsn peeked;
  std::memcpy(&peeked, buf + 8, sizeof(peeked));
  EXPECT_EQ(peeked, 0x1122334455667788ULL);
}

TEST(PageGeometryTest, ExactCapacityFill) {
  uint8_t buf[kPageSize] = {};
  PageView page(buf);
  page.Format(1, 0, 24);
  const uint16_t cap = page.Capacity();
  uint8_t val[24] = {};
  for (uint16_t i = 0; i < cap; i++) {
    page.InsertEntryRaw(i, i, val);
  }
  EXPECT_TRUE(page.IsFull());
  EXPECT_EQ(page.nkeys(), cap);
  // Entries end within the page.
  EXPECT_LE(page.EntryOffset(cap), kPageSize);
}

TEST(PageGeometryTest, LowerBoundOnEmptyPage) {
  uint8_t buf[kPageSize] = {};
  PageView page(buf);
  page.Format(1, 0, 16);
  EXPECT_EQ(page.LowerBound(42), 0);
  uint16_t idx;
  EXPECT_FALSE(page.Find(42, &idx));
}

TEST(PageGeometryTest, WideRowsStillFitSeveralPerPage) {
  uint8_t buf[kPageSize] = {};
  PageView page(buf);
  page.Format(1, 0, 2048);  // warehouse-style fat rows
  EXPECT_GE(page.Capacity(), 7);
  EXPECT_LE(page.Capacity(), 8);
}

// ---------- B+tree boundaries ----------

TEST(BTreeEdgeTest, ScanBeyondMaxKeyReturnsEmpty) {
  EdgeEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  auto t = *db->CreateTable(ctx, "t", 16);
  for (uint64_t k = 1; k <= 50; k++) {
    ASSERT_TRUE(t->Insert(ctx, k, std::string(16, 'x')).ok());
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  auto n = t->Scan(ctx, 1000, 10, &out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(BTreeEdgeTest, ScanWithZeroCount) {
  EdgeEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  auto t = *db->CreateTable(ctx, "t", 16);
  ASSERT_TRUE(t->Insert(ctx, 1, std::string(16, 'x')).ok());
  auto n = t->Scan(ctx, 0, 0, nullptr);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(BTreeEdgeTest, ExtremeKeys) {
  EdgeEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  auto t = *db->CreateTable(ctx, "t", 16);
  ASSERT_TRUE(t->Insert(ctx, 0, std::string(16, 'a')).ok());
  ASSERT_TRUE(t->Insert(ctx, UINT64_MAX, std::string(16, 'z')).ok());
  EXPECT_EQ(*t->Get(ctx, 0), std::string(16, 'a'));
  EXPECT_EQ(*t->Get(ctx, UINT64_MAX), std::string(16, 'z'));
  std::vector<std::pair<uint64_t, std::string>> out;
  ASSERT_TRUE(t->Scan(ctx, 0, 10, &out).ok());
  EXPECT_EQ(out.front().first, 0u);
  EXPECT_EQ(out.back().first, UINT64_MAX);
}

TEST(BTreeEdgeTest, DeleteEverythingThenReinsert) {
  EdgeEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  auto t = *db->CreateTable(ctx, "t", 16);
  for (uint64_t k = 1; k <= 1000; k++) {
    ASSERT_TRUE(t->Insert(ctx, k, std::string(16, 'x')).ok());
  }
  for (uint64_t k = 1; k <= 1000; k++) {
    ASSERT_TRUE(t->Delete(ctx, k).ok());
  }
  EXPECT_EQ(*t->tree()->CountAll(ctx), 0u);
  // Empty leaves stay linked; reinserting into them must work.
  for (uint64_t k = 1; k <= 1000; k++) {
    ASSERT_TRUE(t->Insert(ctx, k, std::string(16, 'y')).ok());
  }
  EXPECT_EQ(*t->tree()->CountAll(ctx), 1000u);
  EXPECT_EQ(*t->Get(ctx, 500), std::string(16, 'y'));
}

TEST(BTreeEdgeTest, DescendingInsertOrder) {
  EdgeEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  auto t = *db->CreateTable(ctx, "t", 64);
  for (uint64_t k = 3000; k > 0; k--) {
    ASSERT_TRUE(t->Insert(ctx, k, std::string(64, 'd')).ok()) << k;
  }
  EXPECT_EQ(*t->tree()->CountAll(ctx), 3000u);
  std::vector<std::pair<uint64_t, std::string>> out;
  ASSERT_TRUE(t->Scan(ctx, 0, 3000, &out).ok());
  for (size_t i = 1; i < out.size(); i++) {
    ASSERT_LT(out[i - 1].first, out[i].first);
  }
}

// ---------- mini-transaction early release ----------

TEST(MtrEdgeTest, ReleaseEarlyUnfixesBeforeCommit) {
  EdgeEnv env;
  auto db = env.MakeDb(/*pool_pages=*/2);
  ExecContext ctx;
  MiniTransaction mtr(ctx, db->pool(), db->log());
  auto a = mtr.GetPage(10, false);
  ASSERT_TRUE(a.ok());
  mtr.ReleaseEarly(*a);
  // With only 2 frames, holding both would block a third fetch; the early
  // release must have freed the fix.
  auto b = mtr.GetPage(11, false);
  auto c = mtr.GetPage(12, false);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  mtr.Commit();
}

TEST(MtrEdgeTest, ReleasedHandleIsNotDeduped) {
  EdgeEnv env;
  auto db = env.MakeDb();
  ExecContext ctx;
  MiniTransaction mtr(ctx, db->pool(), db->log());
  auto a = mtr.GetPage(5, false);
  ASSERT_TRUE(a.ok());
  mtr.ReleaseEarly(*a);
  auto b = mtr.GetPage(5, true);  // re-fetch, now for write
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*b)->write_fixed);
  mtr.Commit();
}

// ---------- CXL metadata layout contract ----------

TEST(CxlLayoutTest, MetadataStructsAreSingleCacheLines) {
  EXPECT_EQ(sizeof(bufferpool::CxlPoolHeader), kCacheLineSize);
  EXPECT_EQ(sizeof(bufferpool::CxlBlockMeta), kCacheLineSize);
  EXPECT_EQ(sizeof(sharing::FlagLine), kCacheLineSize);
}

TEST(CxlLayoutTest, RegionBytesAccountsForMetadataAndAlignment) {
  const uint64_t bytes = bufferpool::CxlBufferPool::RegionBytes(100);
  EXPECT_GE(bytes, 100ULL * kPageSize + 101 * 64);
  EXPECT_EQ(bytes % kPageSize, 0u);  // frames stay page-aligned
}

}  // namespace
}  // namespace polarcxl
