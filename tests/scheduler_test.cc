// Copyright 2026 The PolarCXLMem Reproduction Authors.
// Scheduler-equivalence tests: the hierarchical timing wheel must pop the
// exact same {at, id, epoch} sequence as the binary-heap oracle for ANY
// interleaving of pushes, pops, parks and resumes — that is the whole
// determinism argument for swapping the executor's scheduler (the pop
// order is a pure function of the live entry set, so any exact
// min-extraction structure replays the identical step sequence).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/lane_sched.h"

namespace polarcxl::sim {
namespace {

// Drives a wheel and a heap oracle in lockstep over one shared LaneHot
// sidecar (staleness is read-only on the sidecar, so sharing is safe) and
// checks every Settle/Top against the oracle.
class DualSched {
 public:
  void Init(size_t n_lanes) {
    hot_.assign(n_lanes, LaneHot{});
    wheel_.Init(&hot_, LaneScheduler::Mode::kWheel);
    oracle_.Init(&hot_, LaneScheduler::Mode::kHeap);
    wheel_.Reserve(n_lanes);
    oracle_.Reserve(n_lanes);
  }

  // Schedules lane `id` at time `at` under a fresh epoch, mirroring
  // Executor::ResumeImmediate / AddLane: the sidecar and the pushed entry
  // must agree or the entry is stale on arrival.
  void Schedule(uint32_t id, Nanos at) {
    LaneHot& h = hot_[id];
    h.clock = at;
    h.epoch++;
    h.parked = 0;
    const SchedEntry e{at, id, h.epoch};
    wheel_.Push(e);
    oracle_.Push(e);
  }

  // Parks a lane that currently has a live entry (Executor::ParkImmediate).
  void Park(uint32_t id) {
    hot_[id].parked = 1;
    wheel_.NoteStale();
    oracle_.NoteStale();
  }

  // Settles both schedulers, checks they agree, pops the minimum from
  // both. Returns false when both drained.
  bool PopBoth(SchedEntry* out) {
    const bool w = wheel_.Settle();
    const bool o = oracle_.Settle();
    EXPECT_EQ(w, o) << "wheel and oracle disagree on drained-ness";
    if (!w || !o) return false;
    const SchedEntry wt = wheel_.Top();
    const SchedEntry ot = oracle_.Top();
    EXPECT_EQ(wt.at, ot.at);
    EXPECT_EQ(wt.id, ot.id);
    EXPECT_EQ(wt.epoch, ot.epoch);
    wheel_.PopTop();
    oracle_.PopTop();
    *out = wt;
    return true;
  }

  // Drains both and checks the full remaining pop sequences match.
  size_t DrainBoth() {
    size_t n = 0;
    SchedEntry e;
    Nanos prev = -1;
    uint32_t prev_id = 0;
    while (PopBoth(&e)) {
      // Pop order must be the {at, id} total order.
      EXPECT_TRUE(e.at > prev || (e.at == prev && e.id > prev_id));
      prev = e.at;
      prev_id = e.id;
      n++;
    }
    return n;
  }

  LaneHot& hot(uint32_t id) { return hot_[id]; }
  LaneScheduler& wheel() { return wheel_; }
  LaneScheduler& oracle() { return oracle_; }

 private:
  std::vector<LaneHot> hot_;
  LaneScheduler wheel_;
  LaneScheduler oracle_;
};

// ---------- randomized property test ----------

// 10K random (clock, lane, park/resume) operations: every pop must match
// the oracle bit for bit. Deltas mix sub-window hops, multi-window hops,
// exact bucket-boundary landings and far-future wakeups (beyond the
// wheel's bucket span, i.e. the overflow heap), and resumes reuse the
// lane's old clock so cursor retreats (rebuilds) happen organically.
TEST(SchedulerEquivalence, RandomizedWheelMatchesHeapOracle) {
  constexpr size_t kLanes = 64;
  constexpr int kOps = 10000;
  DualSched ds;
  ds.Init(kLanes);

  std::mt19937_64 rng(0xC0FFEE);
  std::vector<uint8_t> live(kLanes, 0);    // has an in-scheduler entry
  std::vector<uint8_t> parked(kLanes, 0);  // parked (no live entry)
  for (uint32_t id = 0; id < kLanes; ++id) {
    ds.Schedule(id, static_cast<Nanos>(rng() % 4096));
    live[id] = 1;
  }

  auto random_delta = [&rng]() -> Nanos {
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
        return 1 + static_cast<Nanos>(rng() % 100);  // within a window
      case 3:
      case 4:
        return 1 + static_cast<Nanos>(rng() % 10000);  // a few windows
      case 5:
        // Exact bucket-boundary landing for the 64-lane geometry
        // (window width 128 ns): multiples of 128.
        return static_cast<Nanos>(128 * (1 + rng() % 64));
      case 6:
        return 100000 + static_cast<Nanos>(rng() % 100000);
      default:
        // Far future: way beyond the bucket span (131072 ns at 64
        // lanes) — lands in the overflow heap.
        return (Nanos{1} << 20) + static_cast<Nanos>(rng() % (1 << 22));
    }
  };

  int pops = 0, parks = 0, resumes = 0;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t dice = rng() % 10;
    if (dice < 7) {
      // Step: pop the minimum, then either reschedule or park the lane —
      // exactly what Executor::StepOne does with keep / !keep.
      SchedEntry e;
      if (!ds.PopBoth(&e)) continue;
      pops++;
      live[e.id] = 0;
      if (rng() % 8 == 0) {
        ds.hot(e.id).parked = 1;  // popped entry: no NoteStale needed
        parked[e.id] = 1;
      } else {
        ds.Schedule(e.id, e.at + random_delta());
        live[e.id] = 1;
      }
    } else if (dice < 8) {
      // Park a random live lane out from under its entry.
      const uint32_t id = static_cast<uint32_t>(rng() % kLanes);
      if (live[id] && !parked[id]) {
        ds.Park(id);
        live[id] = 0;
        parked[id] = 1;
        parks++;
      }
    } else {
      // Resume a parked lane. Half the time at its old clock (which may
      // sit far behind the cursor by now — the retreat/rebuild path),
      // half at a fresh future time.
      const uint32_t id = static_cast<uint32_t>(rng() % kLanes);
      if (parked[id]) {
        const Nanos old_clock = ds.hot(id).clock;
        const Nanos at =
            (rng() % 2 == 0) ? old_clock : old_clock + random_delta();
        ds.Schedule(id, at);
        live[id] = 1;
        parked[id] = 0;
        resumes++;
      }
    }
  }
  EXPECT_GT(pops, kOps / 2);
  EXPECT_GT(parks, 0);
  EXPECT_GT(resumes, 0);
  // The park/resume mix forces lazy-deletion sweeps somewhere in 10K ops.
  EXPECT_GT(ds.wheel().rebuilds(), 0u);
  ds.DrainBoth();
}

// ---------- deterministic edge cases ----------

// Entries straddling exact window boundaries (width 128 ns at 64 lanes)
// must pop in {at, id} order: the one-window-per-bucket mapping cannot
// merge or reorder adjacent windows.
TEST(SchedulerEquivalence, BucketBoundaryOrdering) {
  DualSched ds;
  ds.Init(64);
  // {at, id}: boundary-1, boundary, boundary+1, same-at ties, span edge.
  ds.Schedule(7, 0);
  ds.Schedule(0, 128);
  ds.Schedule(1, 127);
  ds.Schedule(2, 128);  // tie with lane 0 at the boundary: id breaks it
  ds.Schedule(3, 129);
  ds.Schedule(5, 255);
  ds.Schedule(4, 256);
  ds.Schedule(6, 131072);  // == bucket span: first overflow window
  const std::vector<std::pair<Nanos, uint32_t>> want = {
      {0, 7},   {127, 1}, {128, 0},    {128, 2},
      {129, 3}, {255, 5}, {256, 4},    {131072, 6}};
  SchedEntry e;
  for (const auto& [at, id] : want) {
    ASSERT_TRUE(ds.PopBoth(&e));
    EXPECT_EQ(e.at, at);
    EXPECT_EQ(e.id, id);
  }
  EXPECT_FALSE(ds.PopBoth(&e));
}

// A wakeup far beyond the bucket span parks in the overflow heap and must
// still interleave correctly with near-term entries pushed later.
TEST(SchedulerEquivalence, FarFutureWakeup) {
  DualSched ds;
  ds.Init(64);
  ds.Schedule(0, 10);
  ds.Schedule(1, Nanos{1} << 40);  // absurdly far: overflow for sure
  SchedEntry e;
  ASSERT_TRUE(ds.PopBoth(&e));
  EXPECT_EQ(e.id, 0u);
  // While the far entry is the only thing left, push nearer work; it must
  // win even though the overflow entry was pushed first.
  ds.Schedule(2, 500000);
  ds.Schedule(3, 20);
  ASSERT_TRUE(ds.PopBoth(&e));
  EXPECT_EQ(e.id, 3u);
  ASSERT_TRUE(ds.PopBoth(&e));
  EXPECT_EQ(e.id, 2u);
  ASSERT_TRUE(ds.PopBoth(&e));
  EXPECT_EQ(e.id, 1u);
  EXPECT_EQ(e.at, Nanos{1} << 40);
  EXPECT_FALSE(ds.PopBoth(&e));
}

// A resume behind the wheel cursor (lane parked early, world moved on,
// lane resumed at its old clock) must retreat the cursor — serviced by a
// wholesale rebuild — and still pop first.
TEST(SchedulerEquivalence, CursorRetreatOnResumeBehindCursor) {
  DualSched ds;
  ds.Init(64);
  ds.Schedule(0, 10);
  ds.Schedule(1, 50000);
  SchedEntry e;
  ASSERT_TRUE(ds.PopBoth(&e));
  EXPECT_EQ(e.id, 0u);
  ds.hot(0).parked = 1;  // lane 0 parks right after its step at t=10
  ASSERT_TRUE(ds.PopBoth(&e));  // cursor is now in t=50000's window
  EXPECT_EQ(e.id, 1u);
  ds.Schedule(1, 60000);
  const uint64_t rebuilds_before = ds.wheel().rebuilds();
  ds.Schedule(0, 20);  // resume at old clock: behind the cursor
  EXPECT_GT(ds.wheel().rebuilds(), rebuilds_before);
  ASSERT_TRUE(ds.PopBoth(&e));
  EXPECT_EQ(e.id, 0u);
  EXPECT_EQ(e.at, 20);
  ASSERT_TRUE(ds.PopBoth(&e));
  EXPECT_EQ(e.id, 1u);
  EXPECT_FALSE(ds.PopBoth(&e));
}

// Regression for the lazy-deletion compaction threshold: parking well
// over `live + 64` lanes must trigger a wholesale rebuild (not wait for
// the stale entries to surface one by one), the rebuild must shed exactly
// the dead entries, and the survivors must still pop in {at, id} order
// identical to the oracle.
TEST(SchedulerEquivalence, RebuildThresholdShedsStaleAndPreservesOrder) {
  constexpr size_t kLanes = 256;
  DualSched ds;
  ds.Init(kLanes);
  for (uint32_t id = 0; id < kLanes; ++id) {
    ds.Schedule(id, 17 * static_cast<Nanos>(id + 1));
  }
  const uint64_t rebuilds_before = ds.wheel().rebuilds();
  // Park every lane not divisible by 4: 192 stale vs 64 live, crossing
  // the `stale > live + 64` threshold partway through the loop.
  size_t parked = 0;
  for (uint32_t id = 0; id < kLanes; ++id) {
    if (id % 4 != 0) {
      ds.Park(id);
      parked++;
    }
  }
  EXPECT_EQ(parked, 192u);
  EXPECT_GT(ds.wheel().rebuilds(), rebuilds_before);
  // The sweep shed the dead weight wholesale, without any Settle; parks
  // after the sweep may linger, but only up to the threshold slack.
  EXPECT_LT(ds.wheel().entries(), kLanes - 64);
  EXPECT_LE(ds.wheel().entries(), (kLanes - parked) + 64 + 1);
  // Pop-order identity over the survivors.
  SchedEntry e;
  for (uint32_t id = 0; id < kLanes; id += 4) {
    ASSERT_TRUE(ds.PopBoth(&e));
    EXPECT_EQ(e.id, id);
    EXPECT_EQ(e.at, 17 * static_cast<Nanos>(id + 1));
  }
  EXPECT_FALSE(ds.PopBoth(&e));
}

// Same-clock ties break deterministically by lane id in both modes — the
// tie-break that makes the pop order a total order in the first place.
TEST(SchedulerEquivalence, SameClockTiesBreakByLaneId) {
  DualSched ds;
  ds.Init(64);
  for (uint32_t id : {5u, 2u, 9u, 0u, 7u}) ds.Schedule(id, 1000);
  SchedEntry e;
  for (uint32_t want : {0u, 2u, 5u, 7u, 9u}) {
    ASSERT_TRUE(ds.PopBoth(&e));
    EXPECT_EQ(e.at, 1000);
    EXPECT_EQ(e.id, want);
  }
  EXPECT_FALSE(ds.PopBoth(&e));
}

}  // namespace
}  // namespace polarcxl::sim
