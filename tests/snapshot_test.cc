// World snapshot/fork determinism: a run that forks a captured post-warmup
// world must be bit-identical to one that builds the world cold — same
// lane_steps, metrics, histograms and bandwidth probes — for every buffer
// pool kind, across repeated forks, across sweep thread counts, and with an
// armed fault plan mutating the forked world.
#include <gtest/gtest.h>

#include <vector>

#include "harness/chaos_driver.h"
#include "harness/instance_driver.h"
#include "harness/sweep_runner.h"
#include "harness/world_builder.h"

namespace polarcxl::harness {
namespace {

PoolingConfig SmallPooling(engine::BufferPoolKind kind) {
  PoolingConfig c;
  c.kind = kind;
  c.instances = 2;
  c.lanes_per_instance = 3;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(20);
  c.measure = Millis(60);
  return c;
}

void ExpectPoolingIdentical(const PoolingResult& a, const PoolingResult& b) {
  EXPECT_EQ(a.lane_steps, b.lane_steps);
  EXPECT_EQ(a.virtual_end, b.virtual_end);
  EXPECT_EQ(a.metrics.queries, b.metrics.queries);
  EXPECT_EQ(a.metrics.events, b.metrics.events);
  EXPECT_EQ(a.metrics.latency.count(), b.metrics.latency.count());
  EXPECT_EQ(a.metrics.latency.min(), b.metrics.latency.min());
  EXPECT_EQ(a.metrics.latency.max(), b.metrics.latency.max());
  EXPECT_DOUBLE_EQ(a.metrics.latency.Mean(), b.metrics.latency.Mean());
  EXPECT_DOUBLE_EQ(a.nic_gbps, b.nic_gbps);
  EXPECT_DOUBLE_EQ(a.cxl_gbps, b.cxl_gbps);
  EXPECT_DOUBLE_EQ(a.lbp_hit_rate, b.lbp_hit_rate);
  EXPECT_EQ(a.local_dram_bytes, b.local_dram_bytes);
  EXPECT_EQ(a.line_hits, b.line_hits);
  EXPECT_EQ(a.line_misses, b.line_misses);
  EXPECT_EQ(a.pages_read_io, b.pages_read_io);
  EXPECT_EQ(a.breakdown.total, b.breakdown.total);
  EXPECT_EQ(a.breakdown.mem, b.breakdown.mem);
  EXPECT_EQ(a.breakdown.io, b.breakdown.io);
  EXPECT_EQ(a.breakdown.net, b.breakdown.net);
  EXPECT_EQ(a.breakdown.lock, b.breakdown.lock);
}

TEST(SnapshotTest, ForkedPoolingRunsAreBitIdenticalToCold) {
  for (auto kind :
       {engine::BufferPoolKind::kDram, engine::BufferPoolKind::kCxl,
        engine::BufferPoolKind::kTieredRdma}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const PoolingResult cold = RunPooling(SmallPooling(kind));
    EXPECT_FALSE(cold.snapshot_hit);

    WorldCache cache;
    const PoolingResult first = RunPooling(SmallPooling(kind), &cache);
    EXPECT_FALSE(first.snapshot_hit);
    ExpectPoolingIdentical(cold, first);

    // Repeated forks of the same snapshot must all match (the second fork
    // catches state the first run mutated but restore missed).
    for (int i = 0; i < 3; i++) {
      const PoolingResult fork = RunPooling(SmallPooling(kind), &cache);
      EXPECT_TRUE(fork.snapshot_hit);
      ExpectPoolingIdentical(cold, fork);
    }
  }
}

TEST(SnapshotTest, SnapshotKeyExcludesMeasureWindow) {
  // Runs that differ only in measure length share one snapshot; each forked
  // window must still match its own cold run.
  WorldCache cache;
  PoolingConfig c = SmallPooling(engine::BufferPoolKind::kCxl);
  (void)RunPooling(c, &cache);  // builds + captures at measure = 60ms

  c.measure = Millis(30);
  const PoolingResult cold_short = RunPooling(c);
  const PoolingResult fork_short = RunPooling(c, &cache);
  EXPECT_TRUE(fork_short.snapshot_hit);
  ExpectPoolingIdentical(cold_short, fork_short);
}

TEST(SnapshotTest, SnapshotReuseIsThreadCountInvariant) {
  // A sweep holding repeated and distinct keys must produce the same
  // results serially without a cache, serially with one, and with the
  // point-parallel sweep runner (same-key points serialize on the lease,
  // distinct keys run concurrently).
  std::vector<PoolingConfig> configs;
  for (int rep = 0; rep < 3; rep++) {
    configs.push_back(SmallPooling(engine::BufferPoolKind::kCxl));
    configs.push_back(SmallPooling(engine::BufferPoolKind::kTieredRdma));
  }

  const auto cold = RunSweep<PoolingConfig, PoolingResult>(
      configs, [](const PoolingConfig& c) { return RunPooling(c); }, 1);

  WorldCache serial_cache;
  const auto serial = RunSweep<PoolingConfig, PoolingResult>(
      configs,
      [&serial_cache](const PoolingConfig& c) {
        return RunPooling(c, &serial_cache);
      },
      1);

  WorldCache parallel_cache;
  const auto parallel = RunSweep<PoolingConfig, PoolingResult>(
      configs,
      [&parallel_cache](const PoolingConfig& c) {
        return RunPooling(c, &parallel_cache);
      },
      4);

  ASSERT_EQ(cold.size(), serial.size());
  ASSERT_EQ(cold.size(), parallel.size());
  for (size_t i = 0; i < cold.size(); i++) {
    SCOPED_TRACE(i);
    ExpectPoolingIdentical(cold[i], serial[i]);
    ExpectPoolingIdentical(cold[i], parallel[i]);
  }
  // Each key misses once and hits on every repeat, at any thread count.
  for (size_t i = 2; i < parallel.size(); i++) {
    EXPECT_TRUE(parallel[i].snapshot_hit);
  }
}

ChaosConfig SmallChaos(engine::BufferPoolKind kind) {
  ChaosConfig c;
  c.kind = kind;
  c.lanes = 4;
  c.sysbench.tables = 2;
  c.sysbench.rows_per_table = 2000;
  c.warmup = Millis(20);
  c.measure = Millis(200);
  c.bucket = Millis(10);
  c.checkpoint_interval = Millis(50);
  c.plan = CanonicalChaosPlan(Millis(200));
  return c;
}

void ExpectChaosIdentical(const ChaosResult& a, const ChaosResult& b) {
  EXPECT_EQ(a.lane_steps, b.lane_steps);
  EXPECT_EQ(a.virtual_end, b.virtual_end);
  EXPECT_EQ(a.ok_ops, b.ok_ops);
  EXPECT_EQ(a.failed_ops, b.failed_ops);
  EXPECT_EQ(a.degraded_fetches, b.degraded_fetches);
  EXPECT_EQ(a.fault_rejections, b.fault_rejections);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.injected.cxl_failures, b.injected.cxl_failures);
  EXPECT_EQ(a.injected.cxl_degraded, b.injected.cxl_degraded);
  EXPECT_EQ(a.injected.nic_failures, b.injected.nic_failures);
  EXPECT_EQ(a.injected.nic_degraded, b.injected.nic_degraded);
  EXPECT_EQ(a.injected.disk_stalls, b.injected.disk_stalls);
  ASSERT_EQ(a.ok.num_buckets(), b.ok.num_buckets());
  for (size_t i = 0; i < a.ok.num_buckets(); i++) {
    EXPECT_EQ(a.ok.bucket(i), b.ok.bucket(i)) << "ok bucket " << i;
  }
  ASSERT_EQ(a.failed.num_buckets(), b.failed.num_buckets());
  for (size_t i = 0; i < a.failed.num_buckets(); i++) {
    EXPECT_EQ(a.failed.bucket(i), b.failed.bucket(i)) << "failed bucket " << i;
  }
}

TEST(SnapshotTest, ForkedChaosRunsMatchColdUnderArmedFaultPlan) {
  // The fault plan arms after the fork point, so the forked world runs the
  // full degraded/retry machinery; the injector must be re-disarmed and its
  // stats zeroed on every restore for the timelines to line up.
  for (auto kind :
       {engine::BufferPoolKind::kCxl, engine::BufferPoolKind::kTieredRdma}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const ChaosConfig c = SmallChaos(kind);
    const ChaosResult cold = RunChaos(c);
    EXPECT_FALSE(cold.snapshot_hit);

    WorldCache cache;
    const ChaosResult first = RunChaos(c, &cache);
    EXPECT_FALSE(first.snapshot_hit);
    ExpectChaosIdentical(cold, first);

    for (int i = 0; i < 2; i++) {
      const ChaosResult fork = RunChaos(c, &cache);
      EXPECT_TRUE(fork.snapshot_hit);
      ExpectChaosIdentical(cold, fork);
    }
  }
}

}  // namespace
}  // namespace polarcxl::harness
